(* Observability layer: histograms, the ring sink, the disabled path,
   and an end-to-end fork+touch run whose trace must be balanced and
   whose Chrome export must be well-formed trace_event JSON. *)

open Mach_hw
open Mach_core
open Mach_obs

(* ---- Hist -------------------------------------------------------------- *)

let test_hist_bucketing () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 0; 1; 2; 3; 4; 7; 8; 1000 ];
  Alcotest.(check int) "count" 8 (Hist.count h);
  Alcotest.(check int) "sum" 1025 (Hist.sum h);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 1000 (Hist.max_value h);
  (* v <= 0 lands in bucket 0; [2^(i-1), 2^i) in bucket i. *)
  Alcotest.(check int) "bucket 0 (v=0)" 1 (Hist.get_bucket h 0);
  Alcotest.(check int) "bucket 1 (v=1)" 1 (Hist.get_bucket h 1);
  Alcotest.(check int) "bucket 2 (2..3)" 2 (Hist.get_bucket h 2);
  Alcotest.(check int) "bucket 3 (4..7)" 2 (Hist.get_bucket h 3);
  Alcotest.(check int) "bucket 4 (8..15)" 1 (Hist.get_bucket h 4);
  Alcotest.(check int) "bucket 10 (512..1023)" 1 (Hist.get_bucket h 10)

let test_hist_exact_percentiles () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 5; 1; 9 ];
  Alcotest.(check int) "p50 of [1;5;9]" 5 (Hist.p50 h);
  Alcotest.(check int) "p95 of [1;5;9]" 9 (Hist.p95 h);
  Alcotest.(check int) "p99 of [1;5;9]" 9 (Hist.p99 h);
  let h = Hist.create () in
  for i = 1 to 100 do
    Hist.add h i
  done;
  (* Exactly while count <= sample_cap the accessors answer from the raw
     sample buffer: no power-of-two rounding. *)
  Alcotest.(check int) "p50 exact" 50 (Hist.p50 h);
  Alcotest.(check int) "p95 exact" 95 (Hist.p95 h);
  Alcotest.(check int) "p99 exact" 99 (Hist.p99 h);
  (* Overflow the sample buffer: falls back to the bucket walk, which
     upper-bounds the true percentile within its power-of-two bucket. *)
  let n = Hist.sample_cap + 100 in
  for i = 101 to n do
    Hist.add h i
  done;
  let p50 = Hist.p50 h in
  Alcotest.(check bool) "bucket fallback upper-bounds p50" true
    (p50 >= (n + 1) / 2 && p50 <= n);
  Alcotest.(check int) "empty accessors" 0 (Hist.p95 (Hist.create ()))

let test_hist_percentiles () =
  let h = Hist.create () in
  (* 100 observations of 10 and one outlier of 10_000. *)
  for _ = 1 to 100 do
    Hist.add h 10
  done;
  Hist.add h 10_000;
  (* p50/p90 fall in the bucket holding 10: [8, 15]. *)
  Alcotest.(check bool) "p50 bounds 10" true
    (Hist.percentile h 0.5 >= 10 && Hist.percentile h 0.5 <= 15);
  Alcotest.(check bool) "p90 bounds 10" true
    (Hist.percentile h 0.9 >= 10 && Hist.percentile h 0.9 <= 15);
  (* p100 is clamped to the largest observation. *)
  Alcotest.(check int) "p100 = max" 10_000 (Hist.percentile h 1.0);
  Alcotest.(check int) "empty percentile" 0
    (Hist.percentile (Hist.create ()) 0.5)

(* ---- Ring -------------------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:8 in
  for i = 0 to 19 do
    Ring.push r i
  done;
  Alcotest.(check int) "length" 8 (Ring.length r);
  Alcotest.(check int) "pushed" 20 (Ring.pushed r);
  Alcotest.(check int) "dropped" 12 (Ring.dropped r);
  Alcotest.(check (list int)) "retains newest, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (Ring.to_list r);
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r);
  (* Zero capacity: every push is a no-op (the null sink's ring). *)
  let z = Ring.create ~capacity:0 in
  Ring.push z 42;
  Alcotest.(check int) "zero-capacity stays empty" 0 (Ring.length z)

(* ---- disabled sink ----------------------------------------------------- *)

let test_disabled_sink () =
  Alcotest.(check bool) "null disabled" false (Obs.enabled Obs.null);
  Alcotest.check_raises "null cannot be enabled"
    (Invalid_argument "Obs.set_enabled: the null sink cannot be enabled")
    (fun () -> Obs.set_enabled Obs.null true);
  (* A fresh machine runs a faulting workload with the default null
     tracer installed: nothing may be recorded anywhere. *)
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:512 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  let t = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 t;
  (match Vm_user.allocate sys t ~size:16384 ~anywhere:true () with
   | Ok a -> Machine.write_byte machine ~cpu:0 ~va:a 'x'
   | Error e -> Alcotest.fail (Kr.to_string e));
  let tr = Machine.tracer machine in
  Alcotest.(check int) "no events seen" 0 (Obs.events_seen tr);
  Alcotest.(check int) "ring empty" 0 (Ring.length (Obs.ring tr));
  List.iter
    (fun r ->
       Alcotest.(check int)
         ("no latency samples: " ^ Obs.fault_resolution_name r)
         0
         (Hist.count (Obs.fault_latency tr r)))
    Obs.fault_resolutions

(* ---- a minimal JSON syntax checker ------------------------------------- *)

(* Enough of a parser to prove the exporter emits well-formed JSON; it
   validates structure without building a document. *)
let json_ok (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let fail = ref false in
  let expect c =
    if peek () = Some c then incr pos else fail := true
  in
  let rec value () =
    if !fail then ()
    else begin
      skip_ws ();
      match peek () with
      | Some '{' -> obj ()
      | Some '[' -> arr ()
      | Some '"' -> string_lit ()
      | Some ('-' | '0' .. '9') -> number ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | _ -> fail := true
    end
  and literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l
    else fail := true
  and number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail := true
  and string_lit () =
    expect '"';
    let closed = ref false in
    while (not !closed) && not !fail do
      if !pos >= n then fail := true
      else begin
        let c = s.[!pos] in
        incr pos;
        if c = '\\' then begin
          if !pos >= n then fail := true else incr pos
        end
        else if c = '"' then closed := true
      end
    done
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let more = ref true in
      while !more && not !fail do
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some ']' ->
          incr pos;
          more := false
        | _ -> fail := true
      done
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let more = ref true in
      while !more && not !fail do
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos
        | Some '}' ->
          incr pos;
          more := false
        | _ -> fail := true
      done
    end
  in
  value ();
  skip_ws ();
  (not !fail) && !pos = n

let test_json_checker_sanity () =
  Alcotest.(check bool) "accepts object" true
    (json_ok {|{"a": [1, 2.5, -3e4], "b": "x\"y", "c": null}|});
  Alcotest.(check bool) "rejects trailing junk" false (json_ok "{} x");
  Alcotest.(check bool) "rejects unclosed" false (json_ok {|{"a": 1|})

(* ---- end to end -------------------------------------------------------- *)

let lookup name = function
  | Jout.Obj fields -> List.assoc_opt name fields
  | _ -> None

let test_end_to_end () =
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:2048 () in
  let tr = Obs.create ~capacity:8192 () in
  Obs.set_enabled tr true;
  Machine.set_tracer machine tr;
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  let ps = Kernel.page_size kernel in
  (* Fork + touch: zero fills in the parent, COW copies in the child. *)
  let parent = Kernel.create_task kernel ~name:"parent" () in
  Kernel.run_task kernel ~cpu:0 parent;
  let size = 16 * ps in
  let addr =
    match Vm_user.allocate sys parent ~size ~anywhere:true () with
    | Ok a -> a
    | Error e -> Alcotest.fail (Kr.to_string e)
  in
  let sweep () =
    let rec loop va =
      if va < addr + size then begin
        Machine.write_byte machine ~cpu:0 ~va 'e';
        loop (va + ps)
      end
    in
    loop addr
  in
  sweep ();
  let child = Kernel.fork_task kernel ~cpu:0 parent in
  Kernel.run_task kernel ~cpu:0 child;
  sweep ();
  (* Balanced bracketing and full latency coverage. *)
  let begins = Obs.count tr (Obs.Fault_begin { va = 0; write = false }) in
  let ends =
    Obs.count tr
      (Obs.Fault_end { va = 0; resolution = Obs.Fault_error; cycles = 0 })
  in
  Alcotest.(check bool) "faults happened" true (begins > 0);
  Alcotest.(check int) "begin/end balanced" begins ends;
  Alcotest.(check int) "no open faults" 0 (Obs.open_faults tr);
  let hist_total =
    List.fold_left
      (fun acc r -> acc + Hist.count (Obs.fault_latency tr r))
      0 Obs.fault_resolutions
  in
  Alcotest.(check int) "hist counts sum to machine faults"
    (Machine.stats machine).Machine.faults hist_total;
  Alcotest.(check bool) "saw zero fills" true
    (Hist.count (Obs.fault_latency tr Obs.Zero_fill) > 0);
  Alcotest.(check bool) "saw cow copies" true
    (Hist.count (Obs.fault_latency tr Obs.Cow_copy) > 0);
  (* The Chrome export is well-formed and every event carries the
     trace_event essentials. *)
  let doc = Export.chrome_trace ~cycles_per_us:1.0 tr in
  Alcotest.(check bool) "chrome trace is valid JSON" true
    (json_ok (Jout.to_string doc));
  let events =
    match lookup "traceEvents" doc with
    | Some (Jout.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "trace has events" true (List.length events > 0);
  let b = ref 0 and e = ref 0 in
  List.iter
    (fun ev ->
       let is_meta = lookup "ph" ev = Some (Jout.Str "M") in
       List.iter
         (fun field ->
            if lookup field ev = None then
              Alcotest.failf "event missing %s: %s" field
                (Jout.to_string ev))
         (* Metadata records carry no timestamp in the trace_event
            format; every real event must. *)
         ([ "name"; "ph"; "pid"; "tid" ] @ if is_meta then [] else [ "ts" ]);
       match lookup "ph" ev with
       | Some (Jout.Str "B") -> incr b
       | Some (Jout.Str "E") -> incr e
       | _ -> ())
    events;
  Alcotest.(check int) "B/E pairs balanced in export" !b !e;
  (* stats_json agrees with itself. *)
  let stats = Export.stats_json tr in
  Alcotest.(check bool) "stats is valid JSON" true
    (json_ok (Jout.to_string stats));
  (match lookup "faults_total" stats with
   | Some (Jout.Int n) -> Alcotest.(check int) "faults_total" hist_total n
   | _ -> Alcotest.fail "stats missing faults_total");
  Kernel.terminate_task kernel ~cpu:0 child;
  Kernel.terminate_task kernel ~cpu:0 parent

(* ---- cycle attribution and spans --------------------------------------- *)

(* Deterministic mixed workload on two CPUs, driven by an op list: the
   parent writes pages on CPU 0 (zero fills), a one-time fork puts the
   child on CPU 1 (COW copies + cross-CPU shootdowns), and explicit
   pageout passes exercise the daemon and pager-write paths.  With
   [traced], the tracer is installed before [Kernel.create] so even
   boot-time pmap work is attributed. *)
let run_attr_workload ~traced ops =
  let machine =
    Machine.create ~arch:Arch.uvax2 ~memory_frames:2048 ~cpus:2 ()
  in
  let tr =
    if traced then begin
      let tr = Obs.create ~capacity:16384 () in
      Obs.set_enabled tr true;
      Machine.set_tracer machine tr;
      tr
    end
    else Machine.tracer machine
  in
  let kernel = Kernel.create ~page_multiple:8 machine in
  let sys = Kernel.sys kernel in
  let ps = Kernel.page_size kernel in
  let npages = 32 in
  let parent = Kernel.create_task kernel ~name:"we\"ird\\task\tname" () in
  Kernel.run_task kernel ~cpu:0 parent;
  let addr =
    match
      Vm_user.allocate sys parent ~size:(npages * ps) ~anywhere:true ()
    with
    | Ok a -> a
    | Error e -> Alcotest.fail (Kr.to_string e)
  in
  let child = ref None in
  List.iter
    (fun op ->
       match op with
       | `Touch i ->
         Kernel.run_task kernel ~cpu:0 parent;
         Machine.write_byte machine ~cpu:0
           ~va:(addr + ((i mod npages) * ps))
           'a'
       | `Child_touch i ->
         (match !child with
          | None ->
            let c = Kernel.fork_task kernel ~cpu:0 parent in
            child := Some c
          | Some _ -> ());
         (match !child with
          | Some c ->
            Kernel.run_task kernel ~cpu:1 c;
            Machine.write_byte machine ~cpu:1
              ~va:(addr + ((i mod npages) * ps))
              'b'
          | None -> ())
       | `Pageout n ->
         Vm_pageout.deactivate_some sys ~count:n;
         Vm_pageout.run sys ~wanted:n)
    ops;
  (machine, sys, tr)

let fixed_ops =
  [ `Touch 0; `Touch 1; `Touch 2; `Touch 3; `Child_touch 1; `Child_touch 2;
    `Touch 4; `Pageout 8; `Touch 5; `Child_touch 5; `Pageout 4; `Touch 6 ]

let test_attribution_conservation () =
  let machine, _sys, tr = run_attr_workload ~traced:true fixed_ops in
  let cpus = Machine.cpu_count machine in
  for cpu = 0 to cpus - 1 do
    Alcotest.(check int)
      (Printf.sprintf "cpu%d: category totals sum to its clock" cpu)
      (Machine.cycles machine ~cpu)
      (Obs.attr_cpu_total tr ~cpu)
  done;
  let clocks =
    Array.init cpus (fun cpu -> Machine.cycles machine ~cpu)
  in
  Alcotest.(check bool) "export agrees it conserved" true
    (Export.attribution_conserved ~clocks tr);
  (* The interesting categories actually saw cycles. *)
  List.iter
    (fun (name, cat) ->
       Alcotest.(check bool) (name ^ " attributed some cycles") true
         (Obs.attr_grand_total tr cat > 0))
    [ ("user_compute", Obs.User_compute);
      ("fault_service", Obs.Fault_service); ("pmap", Obs.Pmap);
      ("shootdown_ipi", Obs.Shootdown_ipi);
      ("zero_fill", Obs.Zero_fill); ("cow_copy", Obs.Cow_copy);
      ("pageout_daemon", Obs.Pageout_daemon);
      ("disk_wait", Obs.Disk_wait) ];
  Alcotest.(check bool) "attribution json is valid" true
    (json_ok (Jout.to_string (Export.attribution_json ~clocks tr)));
  (* No kernel frame may be left open once the workload returns. *)
  for cpu = 0 to cpus - 1 do
    Alcotest.(check int)
      (Printf.sprintf "cpu%d: no open attribution frames" cpu)
      0
      (Obs.attr_depth tr ~cpu)
  done

(* The exporter round trip: well-formed JSON, escaped task names, and
   span discipline — every fault opens a fresh non-zero span id, child
   events carry the innermost open span of their CPU, and begin/end
   nesting is balanced per CPU both in the ring and in the export. *)
let test_span_roundtrip () =
  let _machine, _sys, tr = run_attr_workload ~traced:true fixed_ops in
  Alcotest.(check int) "ring did not wrap" 0 (Ring.dropped (Obs.ring tr));
  let stacks = Hashtbl.create 4 in
  let stack cpu = try Hashtbl.find stacks cpu with Not_found -> [] in
  Ring.iter
    (fun { Obs.cpu; span; ev; _ } ->
       match ev with
       | Obs.Fault_begin _ ->
         if span <= 0 then Alcotest.fail "fault_begin without a span id";
         if List.mem span (stack cpu) then
           Alcotest.fail "span id reused while open";
         Hashtbl.replace stacks cpu (span :: stack cpu)
       | Obs.Fault_end _ ->
         (match stack cpu with
          | top :: rest ->
            Alcotest.(check int) "fault_end closes the innermost span" top
              span;
            Hashtbl.replace stacks cpu rest
          | [] -> Alcotest.fail "fault_end without fault_begin")
       | _ ->
         Alcotest.(check int) "child event carries the innermost span"
           (match stack cpu with top :: _ -> top | [] -> 0)
           span)
    (Obs.ring tr);
  Hashtbl.iter
    (fun cpu st ->
       Alcotest.(check int)
         (Printf.sprintf "cpu%d spans balanced" cpu)
         0 (List.length st))
    stacks;
  (* Completed spans feed the top-N table, biggest first. *)
  let spans = Obs.top_spans tr in
  Alcotest.(check bool) "top spans recorded" true (List.length spans > 0);
  Alcotest.(check bool) "top spans capped" true
    (List.length spans <= Obs.top_span_cap);
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Obs.sp_cycles >= b.Obs.sp_cycles && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "top spans sorted by service time" true
    (sorted spans);
  (* Chrome export: valid JSON with control characters escaped (the
     task name holds a quote, a backslash and a tab), B/E balanced per
     tid, complete slices carrying durations, flow arrows carrying the
     span id. *)
  let doc = Export.chrome_trace ~cycles_per_us:1.0 tr in
  let s = Jout.to_string doc in
  Alcotest.(check bool) "chrome trace is valid JSON" true (json_ok s);
  Alcotest.(check bool) "no raw control characters" true
    (String.for_all (fun c -> c <> '\n' && c <> '\t' && c <> '\r') s);
  let events =
    match lookup "traceEvents" doc with
    | Some (Jout.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let depth = Hashtbl.create 4 in
  let flows = ref 0 in
  List.iter
    (fun ev ->
       let tid =
         match lookup "tid" ev with Some (Jout.Int t) -> t | _ -> -1
       in
       match lookup "ph" ev with
       | Some (Jout.Str "B") ->
         Hashtbl.replace depth tid
           (1 + Option.value ~default:0 (Hashtbl.find_opt depth tid))
       | Some (Jout.Str "E") ->
         let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
         if d <= 0 then Alcotest.fail "E without B on its tid";
         Hashtbl.replace depth tid (d - 1)
       | Some (Jout.Str "X") ->
         if lookup "dur" ev = None then
           Alcotest.fail "complete slice without dur"
       | Some (Jout.Str ("s" | "t" | "f")) ->
         incr flows;
         (match lookup "id" ev with
          | Some (Jout.Int id) when id > 0 -> ()
          | _ -> Alcotest.fail "flow event without span id")
       | _ -> ())
    events;
  Hashtbl.iter
    (fun tid d ->
       Alcotest.(check int)
         (Printf.sprintf "tid %d B/E balanced in export" tid)
         0 d)
    depth;
  Alcotest.(check bool) "flow arrows present" true (!flows > 0);
  (* Stats export round-trips too. *)
  Alcotest.(check bool) "stats json valid" true
    (json_ok (Jout.to_string (Export.stats_json tr)))

(* ---- qcheck properties -------------------------------------------------- *)

let gen_ops =
  let open QCheck2 in
  Gen.list_size (Gen.int_range 1 30)
    (Gen.map
       (fun n ->
          if n < 40 then `Touch n
          else if n < 48 then `Child_touch n
          else `Pageout (n - 47))
       (Gen.int_range 0 56))

(* Wherever a random workload stops, every CPU's category totals sum
   exactly to its clock: no cycle is ever double-counted or lost. *)
let attribution_conserves =
  let open QCheck2 in
  Test.make ~name:"attribution partitions every CPU clock" ~count:30 gen_ops
    (fun ops ->
       let machine, _sys, tr = run_attr_workload ~traced:true ops in
       let ok = ref true in
       for cpu = 0 to Machine.cpu_count machine - 1 do
         if Obs.attr_cpu_total tr ~cpu <> Machine.cycles machine ~cpu then
           ok := false
       done;
       !ok)

(* Tracing must be pure observation: the same workload with and without
   a tracer lands on identical clocks and identical VM statistics. *)
let tracing_transparent =
  let open QCheck2 in
  Test.make ~name:"tracing on/off leaves the simulation identical"
    ~count:20 gen_ops
    (fun ops ->
       let probe traced =
         let machine, sys, _tr = run_attr_workload ~traced ops in
         let s = sys.Vm_sys.stats in
         let ms = Machine.stats machine in
         ( List.init (Machine.cpu_count machine) (fun cpu ->
               Machine.cycles machine ~cpu),
           ( s.Vm_sys.faults, s.Vm_sys.zero_fills, s.Vm_sys.cow_copies,
             s.Vm_sys.pageouts ),
           (ms.Machine.ipis, ms.Machine.shootdowns, ms.Machine.disk_ops) )
       in
       probe true = probe false)

let () =
  Alcotest.run "obs"
    [ ( "hist",
        [ Alcotest.test_case "log2 bucketing" `Quick test_hist_bucketing;
          Alcotest.test_case "percentiles" `Quick test_hist_percentiles;
          Alcotest.test_case "exact small-sample percentiles" `Quick
            test_hist_exact_percentiles ] );
      ( "ring",
        [ Alcotest.test_case "wraparound" `Quick test_ring_wraparound ] );
      ( "disabled",
        [ Alcotest.test_case "null sink records nothing" `Quick
            test_disabled_sink ] );
      ( "export",
        [ Alcotest.test_case "json checker sanity" `Quick
            test_json_checker_sanity;
          Alcotest.test_case "fork+touch end to end" `Quick
            test_end_to_end ] );
      ( "attribution",
        [ Alcotest.test_case "totals conserve the clocks" `Quick
            test_attribution_conservation;
          Alcotest.test_case "span round trip through exporters" `Quick
            test_span_roundtrip ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ attribution_conserves; tracing_transparent ] ) ]
