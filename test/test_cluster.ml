(* Clustered pagein/pageout and adaptive read-ahead.

   The contract under test: clustering is an optimisation that must be
   invisible to data — any workload reads the same bytes whether
   [cluster_max] is 1 (clustering off) or wide open; truncated cluster
   replies degrade to the guarded single-page path; and the map-hint
   fast path keeps range operations O(distance-from-hint). *)

open Mach_hw
open Mach_core
open Mach_pagers
module Fail = Mach_fail.Fail

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

let boot ?(frames = 1024) () =
  (* uVAX II, 512 B hardware pages, multiple 8 => 4 KB system pages. *)
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:frames () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

let new_task kernel =
  let t = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 t;
  t

(* A per-offset hash store, like a simple external pager.  Writes are
   split at page size — the range contract: a clustered write must land
   so that later single-page reads find every page. *)
let store_pager ~ps () =
  let store : (int, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  {
    Types.pgr_id = Types.fresh_pager_id ();
    pgr_name = "cluster-store";
    pgr_request =
      (fun ~offset ~length ->
         match Hashtbl.find_opt store offset with
         | Some d ->
           Types.Data_provided (Bytes.sub d 0 (min length (Bytes.length d)))
         | None -> Types.Data_unavailable);
    pgr_write =
      (fun ~offset ~data ->
         let len = Bytes.length data in
         let rec chunk pos =
           if pos < len then begin
             Hashtbl.replace store (offset + pos)
               (Bytes.sub data pos (min ps (len - pos)));
             chunk (pos + ps)
           end
         in
         chunk 0;
         Types.Write_completed);
    pgr_submit = Types.no_submit;
    pgr_submit_write = Types.no_submit_write;
    pgr_should_cache = ref false;
  }

(* ---- adaptive window ramp ----------------------------------------------- *)

(* A cold sequential read of 16 pages must ramp the window 1, 2, 4, 8
   and cost exactly 5 pager requests: pages 0 | 1-2 | 3-6 | 7-14 | 15.
   Every prefetched page is referenced before the read ends. *)
let test_window_ramp () =
  let machine, _, sys = boot ~frames:2048 () in
  let fs = Simfs.create machine () in
  let ps = sys.Vm_sys.page_size in
  let n = 16 in
  let data = Bytes.init (n * ps) (fun i -> Char.chr (i land 0xff)) in
  Simfs.install_file fs ~name:"/ramp" ~data;
  let got =
    Vnode_pager.read_through_object sys fs ~name:"/ramp" ~offset:0
      ~len:(n * ps)
  in
  Alcotest.(check bool) "bytes intact" true (Bytes.equal got data);
  let s = sys.Vm_sys.stats in
  Alcotest.(check int) "pager requests" 5 s.Vm_sys.pager_reads;
  Alcotest.(check int) "prefetch issued" 11 s.Vm_sys.prefetch_issued;
  Alcotest.(check int) "prefetch hits" 11 s.Vm_sys.prefetch_hits;
  Alcotest.(check int) "prefetch wasted" 0 s.Vm_sys.prefetch_wasted

(* A random access pattern must keep the window shut. *)
let test_random_keeps_window_shut () =
  let machine, _, sys = boot ~frames:2048 () in
  let fs = Simfs.create machine () in
  let ps = sys.Vm_sys.page_size in
  let n = 16 in
  Simfs.install_file fs ~name:"/rnd" ~data:(Bytes.make (n * ps) 'r');
  (* Stride-2 touches: no miss ever lands where the last cluster ended. *)
  for i = 0 to (n / 2) - 1 do
    ignore
      (Vnode_pager.read_through_object sys fs ~name:"/rnd"
         ~offset:(2 * i * ps) ~len:1)
  done;
  let s = sys.Vm_sys.stats in
  Alcotest.(check int) "one request per touch" (n / 2) s.Vm_sys.pager_reads;
  Alcotest.(check int) "nothing prefetched" 0 s.Vm_sys.prefetch_issued

(* ---- concurrent streams on one shared object ----------------------------- *)

(* Two readers alternate single-page sequential reads over disjoint
   halves of ONE shared file.  With per-(map,entry) stream slots each
   ramps 1, 2, 4, 8 independently: 5 pager requests and 11 prefetched
   pages apiece, every sequential miss matching its own slot.  This is
   the regression for the seed's single shared cursor, where each
   reader's miss landed where the *other* reader's cluster ended, reset
   the window to one page on every fault, and nobody ever ramped. *)
let test_two_readers_both_ramp () =
  let machine, _, sys = boot ~frames:4096 () in
  let fs = Simfs.create machine () in
  let ps = sys.Vm_sys.page_size in
  let half = 16 in
  let data =
    Bytes.init (2 * half * ps) (fun i -> Char.chr (i * 13 land 0xff))
  in
  Simfs.install_file fs ~name:"/shared" ~data;
  let buf = Bytes.create (2 * half * ps) in
  let read_chunk reader page =
    let off = ((reader * half) + page) * ps in
    Bytes.blit
      (Vnode_pager.read_through_object sys ~stream:(reader + 1, 0) fs
         ~name:"/shared" ~offset:off ~len:ps)
      0 buf off ps
  in
  for page = 0 to half - 1 do
    read_chunk 0 page;
    read_chunk 1 page
  done;
  Alcotest.(check bool) "bytes intact" true (Bytes.equal buf data);
  let s = sys.Vm_sys.stats in
  (* 5 requests each: 1 + 2 + 4 + 8 pages, then the last page alone
     (reader 0's final cluster is clipped at reader 1's first resident
     page; reader 1's at end of file). *)
  Alcotest.(check int) "pager requests" 10 s.Vm_sys.pager_reads;
  Alcotest.(check int) "prefetch issued" 22 s.Vm_sys.prefetch_issued;
  Alcotest.(check int) "prefetch hits" 22 s.Vm_sys.prefetch_hits;
  Alcotest.(check int) "sequential misses matched their slot" 8
    s.Vm_sys.stream_hits;
  Alcotest.(check int) "no slot was stolen" 0 s.Vm_sys.stream_resets

(* The same alternating workload with [stream_slots = 1] must reproduce
   the seed's interference exactly: one shared cursor, every miss looks
   random, 32 single-page requests and no read-ahead at all. *)
let test_single_slot_is_legacy_interference () =
  let machine, _, sys = boot ~frames:4096 () in
  sys.Vm_sys.stream_slots <- 1;
  let fs = Simfs.create machine () in
  let ps = sys.Vm_sys.page_size in
  let half = 16 in
  Simfs.install_file fs ~name:"/shared"
    ~data:(Bytes.make (2 * half * ps) 's');
  for page = 0 to half - 1 do
    List.iter
      (fun reader ->
         ignore
           (Vnode_pager.read_through_object sys ~stream:(reader + 1, 0) fs
              ~name:"/shared"
              ~offset:(((reader * half) + page) * ps)
              ~len:ps))
      [ 0; 1 ]
  done;
  let s = sys.Vm_sys.stats in
  Alcotest.(check int) "one request per page" 32 s.Vm_sys.pager_reads;
  Alcotest.(check int) "window never ramped" 0 s.Vm_sys.prefetch_issued

(* ---- free-behind ---------------------------------------------------------- *)

(* A ramped stream deactivates the clean pages behind its cursor to the
   head of the inactive queue; a dirty page in its wake is skipped (its
   data exists nowhere else).  Memory is ample, so the pageout daemon
   never runs: any page on the inactive queue that the prefetch tail did
   not put there was moved by free-behind. *)
let test_free_behind_skips_dirty () =
  let machine, kernel, sys = boot ~frames:4096 () in
  sys.Vm_sys.free_behind_min <- 2;
  let fs = Simfs.create machine () in
  let ps = sys.Vm_sys.page_size in
  let n = 32 in
  Simfs.install_file fs ~name:"/fb" ~data:(Bytes.make (n * ps) 'f');
  let task = new_task kernel in
  let addr =
    match Vnode_pager.map_file sys fs task ~name:"/fb" () with
    | Ok (a, _) -> a
    | Error e -> Alcotest.fail (Kr.to_string e)
  in
  (* Dirty page 1 before the stream sweeps past it. *)
  Machine.write machine ~cpu:0 ~va:(addr + ps) (Bytes.of_string "dirty");
  for i = 0 to n - 1 do
    Machine.touch machine ~cpu:0 ~va:(addr + (i * ps)) ~write:false
  done;
  let s = sys.Vm_sys.stats in
  Alcotest.(check bool) "free-behind moved pages" true
    (s.Vm_sys.free_behind_pages > 0);
  let o =
    match Vm_map.resolve_object_at sys (Task.map task) ~va:addr with
    | Some (o, _) -> o
    | None -> Alcotest.fail "no object behind the mapping"
  in
  let queue_of i =
    match Vm_object.lookup_resident sys o ~offset:(i * ps) with
    | Some p -> p.Types.pg_queue
    | None -> Alcotest.fail (Printf.sprintf "page %d not resident" i)
  in
  Alcotest.(check bool) "dirty page stays active" true
    (queue_of 1 = Types.Q_active);
  (* A clean page well behind the final cursor was demoted. *)
  Alcotest.(check bool) "clean page behind the cursor went inactive" true
    (queue_of 4 = Types.Q_inactive);
  (* And the data is untouched. *)
  let got = Machine.read machine ~cpu:0 ~va:(addr + ps) ~len:5 in
  Alcotest.(check string) "dirty bytes intact" "dirty" (Bytes.to_string got)

(* ---- clustered pageout round trip ---------------------------------------- *)

(* Dirty 16 contiguous anonymous pages, evict everything, fault it all
   back: pageout must coalesce the runs into clustered writes, the swap
   pager must serve the clustered reads back, and every byte must
   survive the round trip. *)
let test_clustered_pageout_roundtrip () =
  let machine, kernel, sys = boot ~frames:1024 () in
  let task = new_task kernel in
  let ps = sys.Vm_sys.page_size in
  let n = 16 in
  let addr = ok (Vm_user.allocate sys task ~size:(n * ps) ~anywhere:true ()) in
  let pat i = Printf.sprintf "cluster-%02d" i in
  for i = 0 to n - 1 do
    Machine.write machine ~cpu:0 ~va:(addr + (i * ps))
      (Bytes.of_string (pat i))
  done;
  for _ = 1 to 6 do
    Vm_pageout.deactivate_some sys ~count:128;
    Vm_pageout.run sys ~wanted:128
  done;
  let s = sys.Vm_sys.stats in
  Alcotest.(check bool) "writes were clustered" true
    (s.Vm_sys.clustered_pageouts >= 2);
  Alcotest.(check bool) "all pages paged out" true (s.Vm_sys.pageouts >= n);
  for i = 0 to n - 1 do
    let got =
      Bytes.to_string
        (Machine.read machine ~cpu:0 ~va:(addr + (i * ps))
           ~len:(String.length (pat i)))
    in
    Alcotest.(check string) (Printf.sprintf "page %d" i) (pat i) got
  done

(* ---- truncated clusters degrade, deterministically ----------------------- *)

(* Page out 8 pages through a chaos-wrapped store pager, then fault them
   back sequentially with a [Short 64] injected on the first *cluster*
   request: the reply is below one page, so the kernel must fall back to
   the guarded single-page path and still return perfect data.  Run the
   scenario twice: same seed, same fingerprint. *)
let short_cluster_run seed =
  let machine, kernel, sys = boot ~frames:1024 () in
  let ps = sys.Vm_sys.page_size in
  let inj = Fail.create ~seed in
  let task = new_task kernel in
  let pager = store_pager ~ps () in
  let n = 8 in
  let addr =
    match Chaos_pager.map_wrapped sys task inj ~pager ~size:(n * ps) () with
    | Ok (a, _) -> a
    | Error e -> Alcotest.fail (Kr.to_string e)
  in
  let pat i = Printf.sprintf "short-%02d" i in
  for i = 0 to n - 1 do
    Machine.write machine ~cpu:0 ~va:(addr + (i * ps))
      (Bytes.of_string (pat i))
  done;
  for _ = 1 to 6 do
    Vm_pageout.deactivate_some sys ~count:128;
    Vm_pageout.run sys ~wanted:128
  done;
  let corrupt = ref 0 in
  let check i =
    let got =
      Bytes.to_string
        (Machine.read machine ~cpu:0 ~va:(addr + (i * ps))
           ~len:(String.length (pat i)))
    in
    if got <> pat i then incr corrupt
  in
  (* Single-page read that arms the sequential window... *)
  check 0;
  (* ...then truncate the cluster request that follows it. *)
  let k = Fail.ops inj ~site:"pager.request" in
  Fail.attach inj ~site:"pager.request"
    [ Fail.Between (k, k, Fail.Always (Fail.Short 64)) ];
  for i = 1 to n - 1 do
    check i
  done;
  (!corrupt, Fail.injections inj, Fail.fingerprint inj)

let test_short_cluster_degrades () =
  let c1, i1, fp1 = short_cluster_run 77 in
  let c2, i2, fp2 = short_cluster_run 77 in
  Alcotest.(check int) "no corruption" 0 c1;
  Alcotest.(check int) "replay no corruption" 0 c2;
  Alcotest.(check bool) "short injection taken" true (i1 >= 1);
  Alcotest.(check int) "replay same injections" i1 i2;
  Alcotest.(check string) "fingerprint stable" fp1 fp2

(* Like [store_pager], but range requests gather consecutive per-page
   entries, so a successful cluster really returns multiple pages (and
   prefetch actually issues). *)
let range_store_pager ~ps () =
  let base = store_pager ~ps () in
  { base with
    Types.pgr_request =
      (fun ~offset ~length ->
         let n = max 1 (length / ps) in
         let rec gather i acc =
           if i >= n then List.rev acc
           else
             match base.Types.pgr_request ~offset:(offset + (i * ps)) ~length:ps with
             | Types.Data_provided d -> gather (i + 1) (d :: acc)
             | _ -> List.rev acc
         in
         match gather 0 [] with
         | [] -> base.Types.pgr_request ~offset ~length
         | chunks -> Types.Data_provided (Bytes.concat Bytes.empty chunks)) }

(* A degraded cluster must not kill read-ahead for good: the successful
   single-page fallback still advances the sequence point, so the very
   next sequential fault clusters again.  Regression for the bug where
   the fallback skipped the window commit, making every later fault
   look random. *)
let test_degraded_cluster_resumes_ramp () =
  let machine, kernel, sys = boot ~frames:1024 () in
  let ps = sys.Vm_sys.page_size in
  let inj = Fail.create ~seed:3 in
  let task = new_task kernel in
  let pager = range_store_pager ~ps () in
  let n = 8 in
  let addr =
    match Chaos_pager.map_wrapped sys task inj ~pager ~size:(n * ps) () with
    | Ok (a, _) -> a
    | Error e -> Alcotest.fail (Kr.to_string e)
  in
  let pat i = Printf.sprintf "resume-%02d" i in
  for i = 0 to n - 1 do
    Machine.write machine ~cpu:0 ~va:(addr + (i * ps))
      (Bytes.of_string (pat i))
  done;
  for _ = 1 to 6 do
    Vm_pageout.deactivate_some sys ~count:128;
    Vm_pageout.run sys ~wanted:128
  done;
  let check i =
    let got =
      Bytes.to_string
        (Machine.read machine ~cpu:0 ~va:(addr + (i * ps))
           ~len:(String.length (pat i)))
    in
    Alcotest.(check string) (Printf.sprintf "page %d" i) (pat i) got
  in
  let s = sys.Vm_sys.stats in
  (* Arm the sequential window, then fail exactly the cluster request
     that follows (one bad transfer, then the pager recovers). *)
  check 0;
  let k = Fail.ops inj ~site:"pager.request" in
  Fail.attach inj ~site:"pager.request"
    [ Fail.After (k, Fail.Fail_n_then_recover (k + 1, Fail.Short 64)) ];
  let issued0 = s.Vm_sys.prefetch_issued in
  check 1;
  Alcotest.(check int) "short cluster prefetched nothing" issued0
    s.Vm_sys.prefetch_issued;
  (* Page 2 is sequential after the fallback: the ramp must resume. *)
  check 2;
  Alcotest.(check bool) "next sequential fault clusters again" true
    (s.Vm_sys.prefetch_issued > issued0);
  for i = 3 to n - 1 do
    check i
  done

(* [plan] must not mutate the window before the range request succeeds:
   against a pager that refuses every multi-page request, each
   sequential fault asks for exactly the un-ramped two pages — under the
   old pre-commit the refused attempts would phantom-ramp 2→4→8 — and
   the committed window stays at 1. *)
let test_failed_cluster_does_not_ramp () =
  let machine, kernel, sys = boot ~frames:2048 () in
  let ps = sys.Vm_sys.page_size in
  let task = new_task kernel in
  let lengths = ref [] in
  let pager =
    {
      Types.pgr_id = Types.fresh_pager_id ();
      pgr_name = "single-only";
      pgr_request =
        (fun ~offset ~length ->
           lengths := length :: !lengths;
           if length > ps then Types.Data_error
           else
             Types.Data_provided
               (Bytes.make ps (Char.chr (0x41 + (offset / ps)))));
      pgr_write = (fun ~offset:_ ~data:_ -> Types.Write_completed);
      pgr_submit = Types.no_submit;
      pgr_submit_write = Types.no_submit_write;
      pgr_should_cache = ref false;
    }
  in
  let n = 8 in
  let inj = Fail.create ~seed:1 in
  (* Pass-through wrapper: no rules attached, just the mapping helper. *)
  let addr =
    match Chaos_pager.map_wrapped sys task inj ~pager ~size:(n * ps) () with
    | Ok (a, _) -> a
    | Error e -> Alcotest.fail (Kr.to_string e)
  in
  for i = 0 to n - 1 do
    let got = Machine.read machine ~cpu:0 ~va:(addr + (i * ps)) ~len:1 in
    Alcotest.(check char)
      (Printf.sprintf "page %d" i)
      (Char.chr (0x41 + i))
      (Bytes.get got 0)
  done;
  let clusters = List.filter (fun l -> l > ps) !lengths in
  Alcotest.(check bool) "clusters were attempted" true (clusters <> []);
  List.iter
    (fun l ->
       Alcotest.(check int) "attempt stayed at the un-ramped size" (2 * ps) l)
    clusters;
  match Vm_map.resolve_object_at sys (Task.map task) ~va:addr with
  | Some (o, _) ->
    Alcotest.(check bool) "stream slots exist" true
      (Array.length o.Types.obj_streams > 0);
    Array.iter
      (fun st ->
         Alcotest.(check int) "committed window is still 1" 1
           st.Types.st_window)
      o.Types.obj_streams
  | None -> Alcotest.fail "no object behind the mapping"

(* ---- map-hint fast path for range operations ----------------------------- *)

(* With 64 one-page entries, a range op far from the hint walks the map;
   the same op with the hint parked on the target must examine only a
   handful of nodes.  Regression guard for the [first_node_beyond] hint
   start. *)
let test_hint_accelerates_range_ops () =
  let machine, kernel, sys = boot ~frames:2048 () in
  let task = new_task kernel in
  let m = Task.map task in
  let ps = sys.Vm_sys.page_size in
  let addrs =
    List.init 64 (fun _ ->
        ok (Vm_user.allocate sys task ~size:ps ~anywhere:true ()))
  in
  let first = List.hd addrs in
  let last = List.nth addrs 63 in
  (* Park the hint at the far end, then operate on the last entry. *)
  Machine.touch machine ~cpu:0 ~va:first ~write:true;
  Vm_map.beyond_steps := 0;
  ok
    (Vm_map.protect sys m ~addr:last ~size:ps ~set_max:false
       ~prot:Prot.read_only);
  let cold = !Vm_map.beyond_steps in
  (* Park the hint on the target: same operation, few steps. *)
  Machine.touch machine ~cpu:0 ~va:last ~write:false;
  Vm_map.beyond_steps := 0;
  ok
    (Vm_map.protect sys m ~addr:last ~size:ps ~set_max:false
       ~prot:Prot.read_write);
  let warm = !Vm_map.beyond_steps in
  Alcotest.(check bool)
    (Printf.sprintf "cold scan walks the map (%d)" cold)
    true (cold >= 32);
  Alcotest.(check bool)
    (Printf.sprintf "warm scan starts at the hint (%d)" warm)
    true (warm <= 8)

(* ---- qcheck: read-ahead is invisible to read() ---------------------------- *)

let read_ahead_transparent =
  let open QCheck2 in
  Test.make ~name:"read-ahead run byte-identical to cluster_max=1"
    ~count:40
    Gen.(
      list_size (int_range 1 16)
        (pair (int_range 0 ((16 * 4096) - 1)) (int_range 1 (3 * 4096))))
    (fun ops ->
       let run w =
         let machine =
           Machine.create ~arch:Arch.uvax2 ~memory_frames:2048 ()
         in
         let kernel = Kernel.create ~page_multiple:8 machine in
         let sys = Kernel.sys kernel in
         sys.Vm_sys.cluster_max <- w;
         let fs = Simfs.create machine () in
         let size = 16 * sys.Vm_sys.page_size in
         let data = Bytes.init size (fun i -> Char.chr (i * 7 land 0xff)) in
         Simfs.install_file fs ~name:"/prop" ~data;
         (* Always include a full sequential pass so the window ramps. *)
         List.map
           (fun (off, len) ->
              Bytes.to_string
                (Vnode_pager.read_through_object sys fs ~name:"/prop"
                   ~offset:off ~len))
           ((0, size) :: ops)
       in
       run 8 = run 1)

(* Free-behind must be invisible to data even when the file dwarfs
   memory: random reads over a file ~4x physical memory, with the
   pageout daemon reclaiming all the while, return identical bytes
   whether free-behind is on or off — it only reorders the inactive
   queue, and only with clean pages whose contents the pager can
   reproduce. *)
let free_behind_transparent =
  let open QCheck2 in
  Test.make ~name:"free-behind run byte-identical to free-behind off"
    ~count:25
    Gen.(
      list_size (int_range 1 10)
        (pair (int_range 0 ((256 * 4096) - 1)) (int_range 1 (4 * 4096))))
    (fun ops ->
       let run fb =
         let machine =
           (* 512 x 512 B hardware frames = 64 system pages; the file
              below is 256 pages. *)
           Machine.create ~arch:Arch.uvax2 ~memory_frames:512 ()
         in
         let kernel = Kernel.create ~page_multiple:8 machine in
         let sys = Kernel.sys kernel in
         sys.Vm_sys.free_behind_min <- fb;
         let fs = Simfs.create machine () in
         let size = 256 * sys.Vm_sys.page_size in
         let data = Bytes.init size (fun i -> Char.chr (i * 31 land 0xff)) in
         Simfs.install_file fs ~name:"/fbprop" ~data;
         (* A long sequential pass ramps a stream and lets free-behind
            eat its wake; then the random mix. *)
         List.map
           (fun (off, len) ->
              Bytes.to_string
                (Vnode_pager.read_through_object sys fs ~name:"/fbprop"
                   ~offset:off ~len))
           ((0, size) :: ops)
       in
       run 4 = run 0)

(* With ample memory the daemon never runs, so the only thing that can
   put a page of the mapped object on the inactive queue is read-ahead
   or free-behind — and neither may ever park a dirty or wired page
   there.  A page CAN become dirty *after* free-behind demoted it clean
   (its writable mapping is still live, so the write never faults), so
   the invariant exempts pages the workload wrote: every other inactive
   page must be clean, every inactive page unwired, and the memory
   image must match a free-behind-off run byte for byte. *)
let free_behind_never_eats_dirty =
  let open QCheck2 in
  Test.make ~name:"free-behind never deactivates a dirty or wired page"
    ~count:30
    Gen.(list_size (int_range 1 40) (pair (int_range 0 31) bool))
    (fun ops ->
       let n = 32 in
       let written =
         List.filter_map (fun (p, w) -> if w then Some p else None) ops
       in
       let run fb =
         let machine, kernel, sys = boot ~frames:4096 () in
         sys.Vm_sys.free_behind_min <- fb;
         let fs = Simfs.create machine () in
         let ps = sys.Vm_sys.page_size in
         Simfs.install_file fs ~name:"/fbdirty"
           ~data:(Bytes.init (n * ps) (fun i -> Char.chr (i * 7 land 0xff)));
         let task = new_task kernel in
         let addr =
           match Vnode_pager.map_file sys fs task ~name:"/fbdirty" () with
           | Ok (a, _) -> a
           | Error e -> Alcotest.fail (Kr.to_string e)
         in
         (* Sequential sweep to ramp, then the random read/write mix. *)
         for i = 0 to n - 1 do
           Machine.touch machine ~cpu:0 ~va:(addr + (i * ps)) ~write:false
         done;
         List.iter
           (fun (page, write) ->
              Machine.touch machine ~cpu:0 ~va:(addr + (page * ps)) ~write)
           ops;
         let image =
           Bytes.to_string
             (Machine.read machine ~cpu:0 ~va:addr ~len:(n * ps))
         in
         let clean =
           match Vm_map.resolve_object_at sys (Task.map task) ~va:addr with
           | None -> false
           | Some (o, _) ->
             let m = Resident.multiple sys.Vm_sys.resident in
             List.for_all
               (fun p ->
                  p.Types.pg_queue <> Types.Q_inactive
                  || (p.Types.pg_wire_count = 0
                      && (List.mem (p.Types.pg_offset / ps) written
                          || not
                               (List.exists
                                  (fun f ->
                                     Mach_pmap.Pmap_domain.is_modified
                                       kernel.Kernel.domain
                                       ~pfn:(p.Types.pfn + f))
                                  (List.init m Fun.id)))))
               (Resident.object_pages o)
         in
         (image, clean)
       in
       let image_fb, clean_fb = run 2 in
       let image_off, _ = run 0 in
       clean_fb && image_fb = image_off)

let () =
  Alcotest.run "cluster"
    [ ( "read-ahead",
        [ Alcotest.test_case "window ramp" `Quick test_window_ramp;
          Alcotest.test_case "random access" `Quick
            test_random_keeps_window_shut ] );
      ( "streams",
        [ Alcotest.test_case "two readers both ramp" `Quick
            test_two_readers_both_ramp;
          Alcotest.test_case "single slot reproduces interference" `Quick
            test_single_slot_is_legacy_interference;
          Alcotest.test_case "free-behind skips dirty pages" `Quick
            test_free_behind_skips_dirty ] );
      ( "pageout",
        [ Alcotest.test_case "clustered round trip" `Quick
            test_clustered_pageout_roundtrip ] );
      ( "degrade",
        [ Alcotest.test_case "short cluster" `Quick
            test_short_cluster_degrades;
          Alcotest.test_case "fallback resumes the ramp" `Quick
            test_degraded_cluster_resumes_ramp;
          Alcotest.test_case "failed cluster does not ramp" `Quick
            test_failed_cluster_does_not_ramp ] );
      ( "map-hint",
        [ Alcotest.test_case "range ops start at the hint" `Quick
            test_hint_accelerates_range_ops ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ read_ahead_transparent; free_behind_transparent;
            free_behind_never_eats_dirty ] ) ]
