(* The colored per-CPU/NUMA free-page allocator.

   The contracts under test: the free hierarchy never loses or invents
   a page no matter how traffic, reconfiguration and magazine drains
   interleave (conservation); a color hint is honoured while its queue
   is stocked and widens — still succeeding — once it runs dry;
   cross-domain borrowing kicks in exactly when the local domain is
   exhausted and replays identically; magazines flush back to the
   shared queues when memory pressure is declared; and the explicit
   flat configuration (one domain, one color, no magazines) is byte-
   and cycle-identical to the untouched seed allocator. *)

open Mach_hw
open Mach_core

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

(* uVAX II, 512 B hardware pages, multiple 8 => 4 KB system pages. *)
let boot ?(frames = 2048) ?(cpus = 1) () =
  let machine =
    Machine.create ~arch:Arch.uvax2 ~memory_frames:frames ~cpus ()
  in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

(* Machine-independent frame color under [colors] queues. *)
let color_of res p colors = Types.(p.pfn) / Resident.multiple res land (colors - 1)

(* ---- qcheck: conservation ------------------------------------------------ *)

(* Random streams of allocations (any CPU, any color hint), frees (to
   any CPU's magazine), magazine drains and live reconfigurations.
   After every single step the hierarchy must account for exactly
   [total - held] free pages and pass the structural audit. *)
let ops_gen =
  QCheck2.Gen.(
    list_size (int_range 1 120)
      (triple (int_range 0 6) (int_range 0 3) (int_range 0 7)))

let conservation =
  QCheck2.Test.make ~name:"free hierarchy conserved under random traffic"
    ~count:30 ops_gen
    (fun ops ->
       let _, _, sys = boot () in
       let res = sys.Vm_sys.resident in
       Resident.configure res ~colors:4 ~domains:2 ~cpus:4 ~cache:4 ();
       let total = Resident.total_pages res in
       let held = ref [] in
       let nheld = ref 0 in
       List.for_all
         (fun (tag, cpu, k) ->
            (match tag with
             | 0 | 1 | 2 ->
               (match Resident.alloc ~cpu ~color:k res with
                | Some p ->
                  held := p :: !held;
                  incr nheld
                | None -> ())
             | 3 | 4 ->
               (match !held with
                | [] -> ()
                | p :: rest ->
                  held := rest;
                  decr nheld;
                  Resident.free_page ~cpu res p)
             | 5 -> Resident.drain_caches res
             | _ ->
               Resident.configure res ~colors:(1 lsl (k land 3))
                 ~domains:(1 + (cpu land 1)) ~cpus:4
                 ~cache:(if k land 4 = 0 then 0 else 4) ());
            Resident.check_conservation res
            && Resident.free_count res = total - !nheld)
         ops)

(* ---- color affinity ------------------------------------------------------ *)

(* With 8 colors, every page of color 5 is handed out under hint 5
   before the search ever widens; the next hint-5 allocation still
   succeeds, off-color, and is counted as a miss. *)
let test_color_affinity () =
  let _, _, sys = boot () in
  let res = sys.Vm_sys.resident in
  Resident.configure res ~colors:8 ();
  let c = 5 in
  let stock = ref 0 in
  Resident.iter_free res (fun p ->
      if color_of res p 8 = c then incr stock);
  Alcotest.(check bool) "color 5 is stocked" true (!stock > 0);
  for _ = 1 to !stock do
    let p = Option.get (Resident.alloc ~color:c res) in
    Alcotest.(check int) "hint honoured while stocked" c (color_of res p 8)
  done;
  let k = Resident.counters res in
  Alcotest.(check int) "all hits so far" !stock k.Resident.color_hits;
  Alcotest.(check int) "no misses yet" 0 k.Resident.color_misses;
  let p = Option.get (Resident.alloc ~color:c res) in
  Alcotest.(check bool) "widened off-color" true (color_of res p 8 <> c);
  Alcotest.(check int) "counted as a miss" 1 k.Resident.color_misses

(* ---- cross-domain borrowing ---------------------------------------------- *)

(* CPU 0 and CPU 1 home on domains 0 and 1 of a two-domain split.  A
   seeded LCG interleaves allocations and frees on both CPUs until
   domain 0 runs dry and CPU 0 starts borrowing.  The whole run —
   the pfn sequence and every counter — must replay identically. *)
let borrow_run seed =
  let _, _, sys = boot () in
  let res = sys.Vm_sys.resident in
  Resident.configure res ~colors:2 ~domains:2 ~cpus:2 ();
  let rng = ref seed in
  let next bound =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng mod bound
  in
  let held = ref [] in
  let pfns = ref [] in
  for _ = 1 to 400 do
    if next 4 = 0 then (
      match !held with
      | [] -> ()
      | p :: rest ->
        held := rest;
        Resident.free_page ~cpu:(next 2) res p)
    else
      match Resident.alloc ~cpu:0 ~color:(next 2) res with
      | Some p ->
        held := p :: !held;
        pfns := Types.(p.pfn) :: !pfns
      | None -> ()
  done;
  let k = Resident.counters res in
  ( !pfns, k.Resident.numa_local, k.Resident.numa_borrows,
    Resident.domain_free res 0, Resident.domain_free res 1 )

let test_borrow_deterministic () =
  let pfns1, local1, borrows1, d0, _ = borrow_run 42 in
  let pfns2, local2, borrows2, _, _ = borrow_run 42 in
  Alcotest.(check bool) "domain 0 ran dry" true (d0 = 0 || borrows1 > 0);
  Alcotest.(check bool) "borrowing happened" true (borrows1 > 0);
  Alcotest.(check bool) "local allocations happened" true (local1 > 0);
  Alcotest.(check (list int)) "replay-identical pfn sequence" pfns1 pfns2;
  Alcotest.(check int) "replay-identical locals" local1 local2;
  Alcotest.(check int) "replay-identical borrows" borrows1 borrows2

(* ---- magazine drain on pressure ------------------------------------------ *)

let test_pressure_drains_magazines () =
  let _, _, sys = boot () in
  let res = sys.Vm_sys.resident in
  Resident.configure res ~cache:8 ~cpus:1 ();
  let held =
    List.init 8 (fun _ -> Option.get (Resident.alloc ~cpu:0 res))
  in
  List.iter (fun p -> Resident.free_page ~cpu:0 res p) held;
  Alcotest.(check bool) "magazine stocked" true (Resident.cached_count res > 0);
  Vm_sys.set_mem_pressure sys true;
  Alcotest.(check int) "pressure flushed it" 0 (Resident.cached_count res);
  Alcotest.(check bool) "still conserved" true (Resident.check_conservation res)

(* ---- flat configuration is the seed allocator ----------------------------- *)

(* Zero-fill 24 pages, drop the mappings, touch them all again, read
   everything back.  Explicitly configuring the flat topology (--numa 1,
   one color, no magazines) must be indistinguishable — bytes, clock,
   fault count — from never touching the allocator at all. *)
let ident_run ~configure =
  let machine, kernel, sys = boot () in
  if configure then begin
    Machine.set_numa_domains machine 1;
    Vm_sys.configure_allocator ~colors:1 ~cache:0 sys
  end;
  let task = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 task;
  let ps = sys.Vm_sys.page_size in
  let n = 24 in
  let addr = ok (Vm_user.allocate sys task ~size:(n * ps) ~anywhere:true ()) in
  for i = 0 to n - 1 do
    Machine.write_byte machine ~cpu:0 ~va:(addr + (i * ps))
      (Char.chr (0x41 + (i mod 26)))
  done;
  let pmap =
    match (Task.map task).Types.map_pmap with
    | Some p -> p
    | None -> assert false
  in
  pmap.Mach_pmap.Pmap.remove ~start_va:addr ~end_va:(addr + (n * ps));
  for i = 0 to n - 1 do
    Machine.touch machine ~cpu:0 ~va:(addr + (i * ps)) ~write:true
  done;
  let bytes =
    Bytes.to_string (Machine.read machine ~cpu:0 ~va:addr ~len:(n * ps))
  in
  (bytes, Machine.cycles machine ~cpu:0, sys.Vm_sys.stats.Vm_sys.faults)

let test_flat_is_seed () =
  let b0, c0, f0 = ident_run ~configure:false in
  let b1, c1, f1 = ident_run ~configure:true in
  Alcotest.(check string) "byte-identical" b0 b1;
  Alcotest.(check int) "cycle-identical" c0 c1;
  Alcotest.(check int) "fault-identical" f0 f1

let () =
  Alcotest.run "alloc"
    [ ( "color",
        [ Alcotest.test_case "affinity holds until the queue is dry" `Quick
            test_color_affinity ] );
      ( "numa",
        [ Alcotest.test_case "borrowing replays identically" `Quick
            test_borrow_deterministic ] );
      ( "magazines",
        [ Alcotest.test_case "pressure drains per-CPU caches" `Quick
            test_pressure_drains_magazines ] );
      ( "identity",
        [ Alcotest.test_case "flat config matches the seed allocator" `Quick
            test_flat_is_seed ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ conservation ] ) ]
