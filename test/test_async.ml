(* The asynchronous disk model (submit/wait with per-device queues).

   The contract under test: with the model off, every path is byte- and
   cycle-identical to the classical blocking charge; with it on, a
   blocking submit-then-wait still costs exactly the synchronous
   service, overlap shows up only when the CPU does work between submit
   and wait, device queues serialize, the whole thing is deterministic
   under replay (chaos decides at submit), and data is never affected
   either way. *)

open Mach_hw
open Mach_core
open Mach_pagers
module Fail = Mach_fail.Fail

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

let boot ?(frames = 2048) ?(async = false) () =
  (* uVAX II, 512 B hardware pages, multiple 8 => 4 KB system pages. *)
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:frames () in
  Machine.set_disk_async machine async;
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

let new_task kernel =
  let t = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 t;
  t

(* ---- device-level cost identities ---------------------------------------- *)

(* Submit followed by an immediate wait is the degenerate case with no
   work to overlap: it must cost exactly what the blocking model
   charges, in both modes. *)
let test_submit_wait_equals_sync () =
  let cost async =
    let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:64 () in
    Machine.set_disk_async machine async;
    let disk = Simdisk.create machine ~block_size:4096 in
    for b = 0 to 7 do
      Simdisk.install disk ~block:b (Bytes.make 4096 'x')
    done;
    ignore (Simdisk.read_run disk ~cpu:0 ~first:0 ~count:8);
    Machine.cycles machine ~cpu:0
  in
  let sync = cost false in
  Alcotest.(check bool) "blocking read actually costs" true (sync > 0);
  Alcotest.(check int) "same cost in both models" sync (cost true)

(* CPU work between submit and wait is overlapped: the wait charges only
   the residue, and the hidden cycles land in disk_overlap_cycles. *)
let test_overlap_charges_residue () =
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:64 () in
  Machine.set_disk_async machine true;
  let disk = Simdisk.create machine ~block_size:4096 in
  Simdisk.install disk ~block:0 (Bytes.make 4096 'x');
  let service = Machine.disk_service_cycles machine ~bytes:4096 in
  let h = Simdisk.submit_read_run disk ~cpu:0 ~first:0 ~count:1 in
  let compute = service / 2 in
  Machine.charge machine ~cpu:0 compute;
  let before = Machine.cycles machine ~cpu:0 in
  ignore (Simdisk.wait disk ~cpu:0 h);
  Alcotest.(check int) "wait charges only the residue" (service - compute)
    (Machine.cycles machine ~cpu:0 - before);
  let s = Machine.stats machine in
  Alcotest.(check int) "hidden cycles counted as overlap" compute
    s.Machine.disk_overlap_cycles;
  (* Waiting the same handle again is free: the service was consumed. *)
  let before = Machine.cycles machine ~cpu:0 in
  ignore (Simdisk.wait disk ~cpu:0 h);
  Alcotest.(check int) "second wait is free" before
    (Machine.cycles machine ~cpu:0)

(* One queue serializes back-to-back requests; separate queues do not. *)
let test_queues_serialize () =
  let completions queues =
    let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:64 ~cpus:2 () in
    Machine.set_disk_async machine true;
    let disk = Simdisk.create ~queues machine ~block_size:4096 in
    Simdisk.install disk ~block:0 (Bytes.make 4096 'x');
    Simdisk.install disk ~block:1 (Bytes.make 4096 'x');
    (* CPUs hash onto queues, so cpu 0 and cpu 1 share the single queue
       but land on distinct ones when there are two. *)
    let h0 = Simdisk.submit_read_run disk ~cpu:0 ~first:0 ~count:1 in
    let h1 = Simdisk.submit_read_run disk ~cpu:1 ~first:1 ~count:1 in
    (Simdisk.handle_completion h0, Simdisk.handle_completion h1)
  in
  let c0, c1 = completions 1 in
  let service =
    Machine.disk_service_cycles
      (Machine.create ~arch:Arch.uvax2 ~memory_frames:64 ())
      ~bytes:4096
  in
  Alcotest.(check int) "one queue: second request waits for the first"
    (c0 + service) c1;
  let d0, d1 = completions 2 in
  Alcotest.(check int) "two queues: both complete together" d0 d1

(* ---- kernel-level equivalence --------------------------------------------- *)

(* Clustered pageout with async writes: every byte survives the
   submit/reap round trip exactly as in the blocking model. *)
let test_async_pageout_roundtrip () =
  let machine, kernel, sys = boot ~frames:1024 ~async:true () in
  let task = new_task kernel in
  let ps = sys.Vm_sys.page_size in
  let n = 16 in
  let addr = ok (Vm_user.allocate sys task ~size:(n * ps) ~anywhere:true ()) in
  let pat i = Printf.sprintf "async-%02d" i in
  for i = 0 to n - 1 do
    Machine.write machine ~cpu:0 ~va:(addr + (i * ps))
      (Bytes.of_string (pat i))
  done;
  for _ = 1 to 6 do
    Vm_pageout.deactivate_some sys ~count:128;
    Vm_pageout.run sys ~wanted:128
  done;
  let s = sys.Vm_sys.stats in
  Alcotest.(check bool) "writes were clustered" true
    (s.Vm_sys.clustered_pageouts >= 2);
  Alcotest.(check bool) "all pages paged out" true (s.Vm_sys.pageouts >= n);
  for i = 0 to n - 1 do
    let got =
      Bytes.to_string
        (Machine.read machine ~cpu:0 ~va:(addr + (i * ps))
           ~len:(String.length (pat i)))
    in
    Alcotest.(check string) (Printf.sprintf "page %d" i) (pat i) got
  done

(* Chaos under the async model replays identically: injection is decided
   at submit time, so the fingerprint, the data and the clock cannot
   depend on when completions are reaped. *)
let chaos_async_run seed =
  let machine, _, sys = boot ~async:true () in
  let fs = Simfs.create machine () in
  let inj = Fail.create ~seed in
  Fail.attach inj ~site:"disk.read"
    [ Fail.With_probability (0.1, Fail.Fail);
      Fail.With_probability (0.15, Fail.Delay 750) ];
  Simdisk.set_injector (Simfs.disk fs) (Some inj);
  let ps = sys.Vm_sys.page_size in
  let n = 32 in
  let data = Bytes.init (n * ps) (fun i -> Char.chr (i * 5 land 0xff)) in
  Simfs.install_file fs ~name:"/chaos" ~data;
  let got =
    Vnode_pager.read_through_object sys fs ~name:"/chaos" ~offset:0
      ~len:(n * ps)
  in
  let ms = Machine.stats machine in
  ( Digest.bytes got,
    Machine.cycles machine ~cpu:0,
    Fail.injections inj,
    Fail.fingerprint inj,
    (ms.Machine.disk_waits, ms.Machine.disk_wait_cycles,
     ms.Machine.disk_overlap_cycles) )

let test_async_chaos_replays () =
  let d1, c1, i1, f1, s1 = chaos_async_run 42 in
  let d2, c2, i2, f2, s2 = chaos_async_run 42 in
  Alcotest.(check bool) "injections fired" true (i1 >= 1);
  Alcotest.(check string) "same data" (Digest.to_hex d1) (Digest.to_hex d2);
  Alcotest.(check int) "same clock" c1 c2;
  Alcotest.(check int) "same injections" i1 i2;
  Alcotest.(check string) "same fingerprint" f1 f2;
  Alcotest.(check bool) "same wait/overlap stats" true (s1 = s2)

(* ---- qcheck: the model is invisible to data ------------------------------- *)

(* Any read workload returns the same bytes with the async model on or
   off; and with it off, the clock is identical to the classical
   blocking model too (the submit protocol is free when unused). *)
let async_invisible =
  let open QCheck2 in
  Test.make ~name:"async disk byte-identical, and cycle-identical when off"
    ~count:30
    Gen.(
      list_size (int_range 1 12)
        (pair (int_range 0 ((16 * 4096) - 1)) (int_range 1 (3 * 4096))))
    (fun ops ->
       let run async =
         let machine, _, sys = boot ~async () in
         let fs = Simfs.create machine () in
         let size = 16 * sys.Vm_sys.page_size in
         let data = Bytes.init size (fun i -> Char.chr (i * 11 land 0xff)) in
         Simfs.install_file fs ~name:"/prop" ~data;
         let reads =
           List.map
             (fun (off, len) ->
                Bytes.to_string
                  (Vnode_pager.read_through_object sys fs ~name:"/prop"
                     ~offset:off ~len))
             ((0, size) :: ops)
         in
         (reads, Machine.cycles machine ~cpu:0)
       in
       let sync_reads, sync_cycles = run false in
       let async_reads, _ = run true in
       (* A second async-off run doubles as the cycle-identity witness:
          determinism means equality with the first is the whole claim. *)
       let off_reads, off_cycles = run false in
       sync_reads = async_reads && off_reads = sync_reads
       && off_cycles = sync_cycles)

let () =
  Alcotest.run "async"
    [ ( "device",
        [ Alcotest.test_case "submit+wait equals sync" `Quick
            test_submit_wait_equals_sync;
          Alcotest.test_case "overlap charges the residue" `Quick
            test_overlap_charges_residue;
          Alcotest.test_case "queues serialize" `Quick test_queues_serialize ]
      );
      ( "kernel",
        [ Alcotest.test_case "async pageout round trip" `Quick
            test_async_pageout_roundtrip;
          Alcotest.test_case "chaos replays under async" `Quick
            test_async_chaos_replays ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ async_invisible ] ) ]
