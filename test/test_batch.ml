(* Flush batching tests: Machine.shootdown_batch semantics, the pmap
   layer's batch accumulator and request coalescing, and end-to-end IPI
   counts for multi-page vm_protect/vm_deallocate.  The contract under
   test: batching shrinks the number of consistency exchanges (one IPI
   round per target CPU per operation), never the moment at which
   consistency is restored. *)

open Mach_hw
open Mach_core
open Mach_pmap
module Obs = Mach_obs.Obs

let kb = 1024

(* ---- Machine.shootdown_batch ------------------------------------------ *)

let make_translator ~asid table =
  { Translator.asid;
    lookup =
      (fun vpn ->
         match Hashtbl.find_opt table vpn with
         | Some (pfn, prot) -> Translator.Mapped { pfn; prot }
         | None -> Translator.Missing);
    walk_cost = 20 }

(* A 4-CPU machine with pages 0..3 mapped and every CPU's TLB warm on all
   of them. *)
let batch_setup strategy =
  let m =
    Machine.create ~arch:Arch.uvax2 ~memory_frames:64 ~cpus:4
      ~shootdown:strategy ()
  in
  let table = Hashtbl.create 8 in
  for vpn = 0 to 3 do
    Hashtbl.replace table vpn (10 + vpn, Prot.read_write)
  done;
  let tr = make_translator ~asid:1 table in
  let ps = Arch.uvax2.Arch.hw_page_size in
  for cpu = 0 to 3 do
    Machine.set_translator m ~cpu (Some tr);
    for vpn = 0 to 3 do
      ignore (Machine.read_byte m ~cpu ~va:(vpn * ps))
    done
  done;
  (m, table)

let reqs_0_to_3 =
  [ Machine.Flush_range { asid = 1; lo_vpn = 0; hi_vpn = 3 };
    Machine.Flush_page { asid = 1; vpn = 3 } ]

let cached m ~cpu ~vpn =
  List.exists
    (fun (e : Tlb.entry) -> e.Tlb.asid = 1 && e.Tlb.vpn = vpn)
    (Machine.tlb_contents m ~cpu)

let test_batch_one_ipi_per_target () =
  let m, _table = batch_setup Machine.Immediate_ipi in
  Machine.shootdown_batch m ~initiator:0 ~targets:[ 0; 1; 2; 3 ]
    reqs_0_to_3 ~urgent:false;
  (* 3 remote targets, 2 requests: the IPI count follows targets, not
     requests or pages. *)
  Alcotest.(check int) "one IPI per remote target" 3
    (Machine.stats m).Machine.ipis;
  for cpu = 0 to 3 do
    for vpn = 0 to 3 do
      Alcotest.(check bool)
        (Printf.sprintf "cpu%d vpn%d flushed" cpu vpn)
        false (cached m ~cpu ~vpn)
    done
  done

let test_batch_empty_and_singleton () =
  let m, _table = batch_setup Machine.Immediate_ipi in
  Machine.shootdown_batch m ~initiator:0 ~targets:[ 0; 1; 2; 3 ] []
    ~urgent:false;
  Alcotest.(check int) "empty batch is a no-op" 0
    (Machine.stats m).Machine.shootdowns;
  Machine.shootdown_batch m ~initiator:0 ~targets:[ 0; 1 ]
    [ Machine.Flush_page { asid = 1; vpn = 0 } ]
    ~urgent:false;
  (* A singleton behaves exactly like Machine.shootdown. *)
  Alcotest.(check int) "one shootdown" 1 (Machine.stats m).Machine.shootdowns;
  Alcotest.(check int) "one IPI" 1 (Machine.stats m).Machine.ipis;
  Alcotest.(check bool) "cpu1 vpn0 flushed" false (cached m ~cpu:1 ~vpn:0);
  Alcotest.(check bool) "cpu1 vpn1 kept" true (cached m ~cpu:1 ~vpn:1)

let test_batch_deferred_waits () =
  let m, _table = batch_setup Machine.Deferred_timer in
  let before = Machine.cycles m ~cpu:0 in
  Machine.shootdown_batch m ~initiator:0 ~targets:[ 0; 1; 2; 3 ]
    reqs_0_to_3 ~urgent:false;
  Alcotest.(check int) "no IPIs" 0 (Machine.stats m).Machine.ipis;
  Alcotest.(check bool) "initiator waited out the tick" true
    (Machine.cycles m ~cpu:0 - before > 1000);
  (* Consistency restored at the tick: nothing pending, flushes landed. *)
  Alcotest.(check int) "nothing pending" 0 (Machine.pending_flushes m ~cpu:1);
  Alcotest.(check int) "deferred flushes counted" 6
    (Machine.stats m).Machine.deferred_flushes;
  Alcotest.(check bool) "cpu2 vpn1 flushed" false (cached m ~cpu:2 ~vpn:1)

let test_batch_lazy_queues () =
  let m, _table = batch_setup Machine.Lazy_local in
  Machine.shootdown_batch m ~initiator:0 ~targets:[ 0; 1; 2; 3 ]
    reqs_0_to_3 ~urgent:false;
  Alcotest.(check int) "no IPIs" 0 (Machine.stats m).Machine.ipis;
  (* Initiator flushed immediately, remotes only queued. *)
  Alcotest.(check bool) "initiator flushed" false (cached m ~cpu:0 ~vpn:1);
  Alcotest.(check bool) "remote still cached" true (cached m ~cpu:1 ~vpn:1);
  Alcotest.(check int) "both requests pending" 2
    (Machine.pending_flushes m ~cpu:1);
  (* A hit inside the batched range counts as a stale use. *)
  let ps = Arch.uvax2.Arch.hw_page_size in
  ignore (Machine.read_byte m ~cpu:1 ~va:ps);
  Alcotest.(check int) "stale use counted" 1
    (Machine.stats m).Machine.stale_tlb_uses;
  Machine.tick m;
  Alcotest.(check bool) "drained at tick" false (cached m ~cpu:1 ~vpn:1)

let test_batch_urgent_overrides_lazy () =
  let m, _table = batch_setup Machine.Lazy_local in
  Machine.shootdown_batch m ~initiator:0 ~targets:[ 0; 1; 2; 3 ]
    reqs_0_to_3 ~urgent:true;
  Alcotest.(check int) "IPIs despite lazy strategy" 3
    (Machine.stats m).Machine.ipis;
  Alcotest.(check int) "nothing pending" 0 (Machine.pending_flushes m ~cpu:1)

let test_flush_range_is_half_open () =
  let m, _table = batch_setup Machine.Immediate_ipi in
  Machine.flush_local m ~cpu:1
    (Machine.Flush_range { asid = 1; lo_vpn = 1; hi_vpn = 3 });
  Alcotest.(check bool) "below kept" true (cached m ~cpu:1 ~vpn:0);
  Alcotest.(check bool) "lo dropped" false (cached m ~cpu:1 ~vpn:1);
  Alcotest.(check bool) "mid dropped" false (cached m ~cpu:1 ~vpn:2);
  Alcotest.(check bool) "hi kept (half-open)" true (cached m ~cpu:1 ~vpn:3)

(* ---- the pmap layer's accumulator -------------------------------------- *)

(* Scattered pages below the promotion threshold coalesce into
   range/page requests delivered as one batched exchange. *)
let test_accumulator_coalesces () =
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:256 ~cpus:2 () in
  let domain = Pmap_domain.create machine in
  let tr = Obs.create () in
  Obs.set_enabled tr true;
  Machine.set_tracer machine tr;
  let p = Pmap_domain.create_pmap domain in
  let ps = Arch.uvax2.Arch.hw_page_size in
  p.Pmap.activate ~cpu:0;
  p.Pmap.activate ~cpu:1;
  List.iter
    (fun vpn ->
       p.Pmap.enter ~va:(vpn * ps) ~pfn:(20 + vpn) ~prot:Prot.read_write
         ~wired:false)
    [ 0; 1; 2; 10 ];
  Machine.reset_clocks machine;
  Pmap_domain.batched domain (fun () ->
      p.Pmap.remove ~start_va:0 ~end_va:(3 * ps);
      p.Pmap.remove ~start_va:(10 * ps) ~end_va:(11 * ps));
  (* One batched exchange carrying [0,3) as a range plus page 10: one IPI
     to the one remote CPU, and a Shootdown_batch event with 2 requests
     spanning 4 pages. *)
  Alcotest.(check int) "one IPI" 1 (Machine.stats machine).Machine.ipis;
  Alcotest.(check int) "one batched exchange" 1
    (Obs.count tr
       (Obs.Shootdown_batch
          { initiator = 0; targets = 0; requests = 0; span_pages = 0;
            urgent = false; cycles = 0 }));
  let requests = ref 0 and span = ref 0 in
  Mach_obs.Ring.iter
    (fun r ->
       match r.Obs.ev with
       | Obs.Shootdown_batch { requests = rq; span_pages; _ } ->
         requests := rq;
         span := span_pages
       | _ -> ())
    (Obs.ring tr);
  let requests, span = (!requests, !span) in
  Alcotest.(check int) "two coalesced requests" 2 requests;
  Alcotest.(check int) "four pages spanned" 4 span;
  Alcotest.(check (option int)) "all removed" None (p.Pmap.extract 0)

(* Past the threshold the accumulator promotes to a whole-space flush:
   still one exchange, delivered as a plain (singleton) shootdown. *)
let test_accumulator_promotes () =
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:256 ~cpus:2 () in
  let domain = Pmap_domain.create machine in
  let p = Pmap_domain.create_pmap domain in
  let ps = Arch.uvax2.Arch.hw_page_size in
  p.Pmap.activate ~cpu:0;
  p.Pmap.activate ~cpu:1;
  for vpn = 0 to 15 do
    p.Pmap.enter ~va:(vpn * ps) ~pfn:(20 + vpn) ~prot:Prot.read_write
      ~wired:false
  done;
  Machine.reset_clocks machine;
  p.Pmap.remove ~start_va:0 ~end_va:(16 * ps);
  Alcotest.(check int) "one IPI for 16 pages" 1
    (Machine.stats machine).Machine.ipis;
  Alcotest.(check int) "one shootdown" 1
    (Machine.stats machine).Machine.shootdowns

(* ---- end-to-end: vm_protect / vm_deallocate --------------------------- *)

let boot ?(arch = Arch.uvax2) ?(cpus = 4) () =
  let machine =
    Machine.create ~arch ~memory_frames:2048 ~cpus
      ~shootdown:Machine.Immediate_ipi ()
  in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

(* A 64 KB region mapped and TLB-warm on all four CPUs. *)
let warm_region (machine, kernel, sys) =
  let t = Kernel.create_task kernel () in
  for cpu = 0 to Machine.cpu_count machine - 1 do
    Kernel.run_task kernel ~cpu t
  done;
  let size = 64 * kb in
  let addr = ok (Vm_user.allocate sys t ~size ~anywhere:true ()) in
  let ps = Kernel.page_size kernel in
  for cpu = 0 to Machine.cpu_count machine - 1 do
    let rec sweep va =
      if va < addr + size then begin
        Machine.touch machine ~cpu ~va ~write:true;
        sweep (va + ps)
      end
    in
    sweep addr
  done;
  Machine.reset_clocks machine;
  (t, addr, size)

let test_protect_ipis_scale_with_targets () =
  let machine, kernel, sys = boot () in
  let t, addr, size = warm_region (machine, kernel, sys) in
  Mach_pmap.Pmap_domain.set_current_cpu kernel.Kernel.domain 0;
  ok
    (Vm_user.protect sys t ~addr ~size ~set_max:false ~prot:Prot.read_only);
  (* 16 kernel pages revoked, 3 remote CPUs: one IPI per target CPU, not
     per page. *)
  Alcotest.(check int) "IPIs = target CPUs" 3
    (Machine.stats machine).Machine.ipis;
  Alcotest.(check int) "no stale uses under Immediate_ipi" 0
    (Machine.stats machine).Machine.stale_tlb_uses;
  (* The revocation really landed everywhere. *)
  for cpu = 0 to 3 do
    try
      Machine.write_byte machine ~cpu ~va:addr 'X';
      Alcotest.fail "stale writable TLB entry survived"
    with Machine.Memory_violation _ -> ()
  done

let test_deallocate_ipis_scale_with_targets () =
  let machine, kernel, sys = boot () in
  let t, addr, size = warm_region (machine, kernel, sys) in
  Mach_pmap.Pmap_domain.set_current_cpu kernel.Kernel.domain 0;
  ok (Vm_user.deallocate sys t ~addr ~size);
  Alcotest.(check bool) "IPIs bounded by target CPUs"
    true
    ((Machine.stats machine).Machine.ipis <= 3);
  Alcotest.(check int) "no stale uses under Immediate_ipi" 0
    (Machine.stats machine).Machine.stale_tlb_uses;
  for cpu = 0 to 3 do
    try
      ignore (Machine.read_byte machine ~cpu ~va:addr);
      Alcotest.fail "deallocated page still readable"
    with Machine.Memory_violation _ -> ()
  done

(* ---- qcheck: TLBs agree with page tables across all backends ----------- *)

let archs =
  [ Arch.uvax2; Arch.rt_pc; Arch.sun3_160; Arch.ns32082; Arch.rp3_tlb ]

type op =
  | Enter of int * int (* vpn, pfn *)
  | Remove of int * int (* lo_vpn, pages *)
  | Protect of int * int (* lo_vpn, pages *)
  | Touch of int * int (* cpu, vpn *)
  | Batching of bool

let op_gen =
  QCheck2.Gen.(
    oneof
      [ map2 (fun v p -> Enter (v, p)) (int_range 0 31) (int_range 1 63);
        map2 (fun v n -> Remove (v, n)) (int_range 0 31) (int_range 1 12);
        map2 (fun v n -> Protect (v, n)) (int_range 0 31) (int_range 1 12);
        map2 (fun c v -> Touch (c, v)) (int_range 0 1) (int_range 0 31);
        map (fun b -> Batching b) bool ])

(* Under Immediate_ipi there is never a pending invalidation, so at any
   point every cached TLB entry must agree with the page tables — batched
   or not.  The model map drives fault-time re-entry so TLB-only machines
   can make progress. *)
let mixed_ops_agree arch ops =
  let machine =
    Machine.create ~arch ~memory_frames:256 ~cpus:2
      ~shootdown:Machine.Immediate_ipi ()
  in
  let domain = Pmap_domain.create machine in
  let p = Pmap_domain.create_pmap domain in
  let ps = arch.Arch.hw_page_size in
  let model : (int, int * Prot.t) Hashtbl.t = Hashtbl.create 32 in
  Machine.set_fault_handler machine (fun ~cpu:_ f ->
      let vpn = f.Machine.fault_va / ps in
      match Hashtbl.find_opt model vpn with
      | Some (pfn, prot) ->
        p.Pmap.enter ~va:(vpn * ps) ~pfn ~prot ~wired:false
      | None ->
        raise
          (Machine.Memory_violation
             { va = f.Machine.fault_va; write = f.Machine.fault_write;
               reason = "unmapped" }))
  ;
  p.Pmap.activate ~cpu:0;
  p.Pmap.activate ~cpu:1;
  let apply = function
    | Enter (vpn, pfn) ->
      Hashtbl.replace model vpn (pfn, Prot.read_write);
      p.Pmap.enter ~va:(vpn * ps) ~pfn ~prot:Prot.read_write ~wired:false
    | Remove (lo, n) ->
      for vpn = lo to lo + n - 1 do
        Hashtbl.remove model vpn
      done;
      p.Pmap.remove ~start_va:(lo * ps) ~end_va:((lo + n) * ps)
    | Protect (lo, n) ->
      for vpn = lo to lo + n - 1 do
        match Hashtbl.find_opt model vpn with
        | Some (pfn, prot) ->
          Hashtbl.replace model vpn (pfn, Prot.inter prot Prot.read_only)
        | None -> ()
      done;
      p.Pmap.protect ~start_va:(lo * ps) ~end_va:((lo + n) * ps)
        ~prot:Prot.read_only
    | Touch (cpu, vpn) ->
      (try ignore (Machine.read_byte machine ~cpu ~va:(vpn * ps))
       with Machine.Memory_violation _ -> ())
    | Batching on -> Pmap_domain.set_batching domain on
  in
  List.iter apply ops;
  let agreed = ref true in
  for cpu = 0 to 1 do
    List.iter
      (fun (e : Tlb.entry) ->
         if e.Tlb.asid = p.Pmap.asid then
           match p.Pmap.extract (e.Tlb.vpn * ps) with
           | Some pfn when pfn = e.Tlb.pfn -> ()
           | _ -> agreed := false)
      (Machine.tlb_contents machine ~cpu)
  done;
  !agreed && (Machine.stats machine).Machine.stale_tlb_uses = 0

let mixed_ops_qcheck arch =
  QCheck2.Test.make
    ~name:
      (Printf.sprintf "TLBs agree with page tables after mixed ops [%s]"
         arch.Arch.name)
    ~count:60
    QCheck2.Gen.(list_size (int_range 10 50) op_gen)
    (fun ops -> mixed_ops_agree arch ops)

let () =
  Alcotest.run "batch"
    [ ( "machine",
        [ Alcotest.test_case "one IPI per target" `Quick
            test_batch_one_ipi_per_target;
          Alcotest.test_case "empty and singleton batches" `Quick
            test_batch_empty_and_singleton;
          Alcotest.test_case "deferred batch waits out the tick" `Quick
            test_batch_deferred_waits;
          Alcotest.test_case "lazy batch queues all requests" `Quick
            test_batch_lazy_queues;
          Alcotest.test_case "urgent overrides lazy" `Quick
            test_batch_urgent_overrides_lazy;
          Alcotest.test_case "range flush is half-open" `Quick
            test_flush_range_is_half_open ] );
      ( "accumulator",
        [ Alcotest.test_case "coalesces adjacent pages" `Quick
            test_accumulator_coalesces;
          Alcotest.test_case "promotes past the threshold" `Quick
            test_accumulator_promotes ] );
      ( "end_to_end",
        [ Alcotest.test_case "vm_protect: IPIs follow targets" `Quick
            test_protect_ipis_scale_with_targets;
          Alcotest.test_case "vm_deallocate: IPIs follow targets" `Quick
            test_deallocate_ipis_scale_with_targets ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          (List.map mixed_ops_qcheck archs) ) ]
