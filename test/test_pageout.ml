(* Tests for the paging daemon: queue balancing, second chance, write-back
   to the default pager and to external pagers, and data survival under
   genuine memory pressure. *)

open Mach_hw
open Mach_core

let kb = 1024

let boot ?(frames = 256) () =
  (* 256 frames x 512 B, multiple 8 => 16 machine-independent pages. *)
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:frames () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

let new_task kernel ~cpu =
  let t = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu t;
  t

let test_deactivation_moves_pages () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = ok (Vm_user.allocate sys t ~size:(16 * kb) ~anywhere:true ()) in
  for i = 0 to 3 do
    Machine.write_byte machine ~cpu:0 ~va:(a + (i * 4 * kb)) 'd'
  done;
  Alcotest.(check int) "active" 4 (Resident.active_count sys.Vm_sys.resident);
  Vm_pageout.deactivate_some sys ~count:2;
  Alcotest.(check int) "two moved" 2
    (Resident.inactive_count sys.Vm_sys.resident);
  Alcotest.(check int) "two left" 2
    (Resident.active_count sys.Vm_sys.resident)

let test_second_chance () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = ok (Vm_user.allocate sys t ~size:(8 * kb) ~anywhere:true ()) in
  Machine.write_byte machine ~cpu:0 ~va:a 'x';
  Vm_pageout.deactivate_some sys ~count:10;
  (* Touch the page again: its reference bit comes back on. *)
  ignore (Machine.read_byte machine ~cpu:0 ~va:a);
  Vm_pageout.run sys ~wanted:1;
  Alcotest.(check bool) "reactivated, not evicted" true
    (sys.Vm_sys.stats.Vm_sys.reactivations >= 1)

let test_clean_page_dropped_without_io () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = ok (Vm_user.allocate sys t ~size:(4 * kb) ~anywhere:true ()) in
  Machine.write_byte machine ~cpu:0 ~va:a 'x';
  (* Clean the page by hand, then evict: no disk write may happen. *)
  Vm_pageout.deactivate_some sys ~count:10;
  let p =
    match Vm_map.resolve_object_at sys (Task.map t) ~va:a with
    | Some (o, _) -> Option.get (Vm_object.lookup_resident sys o ~offset:0)
    | None -> Alcotest.fail "no object"
  in
  ignore p;
  (* First round: referenced (we just created it) -> second chance;
     second round: clear and evictable. *)
  Vm_pageout.run sys ~wanted:16;
  Vm_pageout.deactivate_some sys ~count:16;
  Machine.reset_clocks machine;
  Vm_pageout.run sys ~wanted:16;
  Alcotest.(check bool) "dirty page written exactly once" true
    ((Machine.stats machine).Machine.disk_ops <= 1)

let test_eviction_data_survives () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  (* Only 16 machine-independent pages exist; dirty 32 pages worth. *)
  let size = 32 * 4 * kb in
  let a = ok (Vm_user.allocate sys t ~size ~anywhere:true ()) in
  for i = 0 to 31 do
    Machine.write machine ~cpu:0 ~va:(a + (i * 4 * kb))
      (Bytes.of_string (Printf.sprintf "block-%02d" i))
  done;
  (* Everything still reads back even though most pages were evicted to
     the default pager. *)
  for i = 0 to 31 do
    Alcotest.(check string)
      (Printf.sprintf "block %d" i)
      (Printf.sprintf "block-%02d" i)
      (Bytes.to_string
         (Machine.read machine ~cpu:0 ~va:(a + (i * 4 * kb)) ~len:8))
  done;
  Alcotest.(check bool) "pageouts happened" true
    (sys.Vm_sys.stats.Vm_sys.pageouts > 0);
  Alcotest.(check bool) "swap traffic happened" true
    ((Machine.stats machine).Machine.disk_ops > 0)

let test_rewrite_evicted_page () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let size = 32 * 4 * kb in
  let a = ok (Vm_user.allocate sys t ~size ~anywhere:true ()) in
  (* Write, force eviction by dirtying everything else, rewrite, check. *)
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "version-1");
  for i = 1 to 31 do
    Machine.write_byte machine ~cpu:0 ~va:(a + (i * 4 * kb)) 'f'
  done;
  Machine.write machine ~cpu:0 ~va:a (Bytes.of_string "version-2");
  for i = 1 to 31 do
    ignore (Machine.read_byte machine ~cpu:0 ~va:(a + (i * 4 * kb)))
  done;
  Alcotest.(check string) "latest version" "version-2"
    (Bytes.to_string (Machine.read machine ~cpu:0 ~va:a ~len:9))

let test_default_pager_attached_once () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = ok (Vm_user.allocate sys t ~size:(4 * kb) ~anywhere:true ()) in
  Machine.write_byte machine ~cpu:0 ~va:a 'x';
  let o =
    match Vm_map.resolve_object_at sys (Task.map t) ~va:a with
    | Some (o, _) -> o
    | None -> Alcotest.fail "no object"
  in
  Alcotest.(check bool) "anonymous object starts pagerless" true
    (o.Types.obj_pager = None);
  Vm_pageout.deactivate_some sys ~count:16;
  Vm_pageout.run sys ~wanted:16;
  Vm_pageout.deactivate_some sys ~count:16;
  Vm_pageout.run sys ~wanted:16;
  (match o.Types.obj_pager with
   | Some pg ->
     Alcotest.(check string) "default pager" "default-pager"
       pg.Types.pgr_name;
     Alcotest.(check bool) "holds the page" true
       (Swap_pager.stored_bytes pg > 0)
   | None -> Alcotest.fail "expected a default pager")

let test_reclaim_triggered_by_allocation () =
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  (* Touch more pages than physical memory outright: grab_page must
     reclaim transparently rather than raising. *)
  let size = 64 * 4 * kb in
  let a = ok (Vm_user.allocate sys t ~size ~anywhere:true ()) in
  for i = 0 to 63 do
    Machine.write_byte machine ~cpu:0 ~va:(a + (i * 4 * kb)) 'y'
  done;
  Alcotest.(check bool) "free list maintained" true
    (Resident.free_count sys.Vm_sys.resident >= 0);
  Alcotest.(check bool) "pageout ran" true
    (sys.Vm_sys.stats.Vm_sys.pageouts > 0)

let test_pageout_waits_for_tlb_flush () =
  (* The pageout path removes mappings and ticks the machine before
     recycling frames (case 2 of Section 5.2); after eviction the victim
     task's pmap has no mapping and its TLB no usable entry. *)
  let machine, kernel, sys = boot () in
  let t = new_task kernel ~cpu:0 in
  let a = ok (Vm_user.allocate sys t ~size:(4 * kb) ~anywhere:true ()) in
  Machine.write_byte machine ~cpu:0 ~va:a 'z';
  Vm_pageout.deactivate_some sys ~count:16;
  Vm_pageout.run sys ~wanted:16;
  Vm_pageout.deactivate_some sys ~count:16;
  Vm_pageout.run sys ~wanted:16;
  Alcotest.(check (option int)) "mapping removed" None
    ((Task.pmap t).Mach_pmap.Pmap.extract a);
  Alcotest.(check int) "no pending flushes" 0
    (Machine.pending_flushes machine ~cpu:0)

let test_cached_object_pages_reclaimable () =
  (* Pages of a cached (ref 0) object are fair game for the daemon; the
     object survives in the cache and refills from its pager. *)
  let machine, kernel, sys = boot () in
  let counting = ref 0 in
  let pager =
    {
      Types.pgr_id = Types.fresh_pager_id ();
      pgr_name = "refill";
      pgr_request =
        (fun ~offset:_ ~length ->
           incr counting;
           Types.Data_provided (Bytes.make length 'C'));
      pgr_write = (fun ~offset:_ ~data:_ -> Types.Write_completed);
      pgr_submit = Types.no_submit;
      pgr_submit_write = Types.no_submit_write;
      pgr_should_cache = ref true;
    }
  in
  let t = new_task kernel ~cpu:0 in
  let a =
    ok
      (Vm_user.allocate_with_pager sys t ~pager ~offset:0 ~size:(4 * kb)
         ~anywhere:true ())
  in
  Alcotest.(check char) "filled" 'C' (Machine.read_byte machine ~cpu:0 ~va:a);
  Kernel.terminate_task kernel ~cpu:0 t;
  Alcotest.(check int) "object cached" 1 (Vm_object.cached_count sys);
  Vm_pageout.deactivate_some sys ~count:100;
  Vm_pageout.run sys ~wanted:100;
  Vm_pageout.deactivate_some sys ~count:100;
  Vm_pageout.run sys ~wanted:100;
  Alcotest.(check int) "still cached after page reclaim" 1
    (Vm_object.cached_count sys);
  (* Remapping revives the object; its page refills from the pager. *)
  let t2 = new_task kernel ~cpu:0 in
  let a2 =
    ok
      (Vm_user.allocate_with_pager sys t2 ~pager ~offset:0 ~size:(4 * kb)
         ~anywhere:true ())
  in
  Alcotest.(check char) "refilled" 'C'
    (Machine.read_byte machine ~cpu:0 ~va:a2)

let test_pageout_skips_busy_free_correctly () =
  let _machine, kernel, sys = boot () in
  ignore kernel;
  (* Empty queues: running the daemon must be a safe no-op. *)
  Vm_pageout.run sys ~wanted:10;
  Alcotest.(check int) "nothing happened" 0
    sys.Vm_sys.stats.Vm_sys.pageouts

let () =
  Alcotest.run "vm_pageout"
    [ ( "queues",
        [ Alcotest.test_case "deactivation" `Quick
            test_deactivation_moves_pages;
          Alcotest.test_case "second chance" `Quick test_second_chance ] );
      ( "write-back",
        [ Alcotest.test_case "clean pages skip io" `Quick
            test_clean_page_dropped_without_io;
          Alcotest.test_case "default pager attached" `Quick
            test_default_pager_attached_once ] );
      ( "objects",
        [ Alcotest.test_case "cached object pages reclaimable" `Quick
            test_cached_object_pages_reclaimable;
          Alcotest.test_case "empty queues safe" `Quick
            test_pageout_skips_busy_free_correctly ] );
      ( "pressure",
        [ Alcotest.test_case "data survives eviction" `Quick
            test_eviction_data_survives;
          Alcotest.test_case "rewrite evicted page" `Quick
            test_rewrite_evicted_page;
          Alcotest.test_case "reclaim on allocation" `Quick
            test_reclaim_triggered_by_allocation;
          Alcotest.test_case "waits for TLB flush" `Quick
            test_pageout_waits_for_tlb_flush ] ) ]
