(* Tests for Vm_object and Resident: reference counting, the object
   cache, shadow chains and collapsing, and the resident page table's
   queues and hash. *)

open Mach_hw
open Mach_core

let ps = 4096

let setup () =
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:2048 () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

(* A pager over a Hashtbl, counting requests. *)
let counting_pager sys ~name =
  let requests = ref 0 in
  let store : (int, Bytes.t) Hashtbl.t = Hashtbl.create 8 in
  let pager =
    {
      Types.pgr_id = Types.fresh_pager_id ();
      pgr_name = name;
      pgr_request =
        (fun ~offset ~length ->
           incr requests;
           match Hashtbl.find_opt store offset with
           | Some b ->
             Types.Data_provided (Bytes.sub b 0 (min length (Bytes.length b)))
           | None -> Types.Data_unavailable);
      pgr_write =
        (fun ~offset ~data ->
           (* Per-offset store: clustered writes must land as page-size
              chunks or later single-page reads would miss the tail. *)
           let ps = sys.Vm_sys.page_size in
           let len = Bytes.length data in
           let rec chunk pos =
             if pos < len then begin
               Hashtbl.replace store (offset + pos)
                 (Bytes.sub data pos (min ps (len - pos)));
               chunk (pos + ps)
             end
           in
           chunk 0;
           Types.Write_completed);
      pgr_submit = Types.no_submit;
      pgr_submit_write = Types.no_submit_write;
      pgr_should_cache = ref true;
    }
  in
  (pager, store, requests)

(* ---- resident page table ------------------------------------------------ *)

let test_resident_alloc_free () =
  let _, _, sys = setup () in
  let res = sys.Vm_sys.resident in
  let total = Resident.total_pages res in
  Alcotest.(check int) "all free initially" total (Resident.free_count res);
  let p = Option.get (Resident.alloc res) in
  Alcotest.(check int) "one taken" (total - 1) (Resident.free_count res);
  Resident.free_page res p;
  Alcotest.(check int) "back" total (Resident.free_count res)

let test_resident_hash_lookup () =
  let _, _, sys = setup () in
  let res = sys.Vm_sys.resident in
  let o = Vm_object.create_anonymous sys ~size:(4 * ps) in
  let p = Option.get (Resident.alloc res) in
  Resident.insert res p ~obj:o ~offset:ps;
  let same_page expected found =
    match found with Some q -> q == expected | None -> false
  in
  Alcotest.(check bool) "found" true
    (same_page p (Resident.lookup res ~obj:o ~offset:ps));
  Alcotest.(check bool) "other offset absent" true
    (Resident.lookup res ~obj:o ~offset:0 = None);
  Resident.remove_from_object res p;
  Alcotest.(check bool) "gone after remove" true
    (Resident.lookup res ~obj:o ~offset:ps = None);
  Resident.free_page res p

let test_resident_queues () =
  let _, _, sys = setup () in
  let res = sys.Vm_sys.resident in
  let p = Option.get (Resident.alloc res) in
  Resident.enqueue res p Types.Q_active;
  Alcotest.(check int) "active" 1 (Resident.active_count res);
  Resident.enqueue res p Types.Q_inactive;
  Alcotest.(check int) "moved" 0 (Resident.active_count res);
  Alcotest.(check int) "inactive" 1 (Resident.inactive_count res);
  (match Resident.take_inactive res with
   | Some q -> Alcotest.(check bool) "same page" true (q == p)
   | None -> Alcotest.fail "expected a page");
  Alcotest.(check int) "empty" 0 (Resident.inactive_count res);
  Resident.free_page res p

let test_resident_page_multiple () =
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:64 () in
  (* 64 frames of 512 bytes in pages of 4 frames = 16 pages of 2 KB. *)
  let res =
    Resident.create ~phys:(Machine.phys machine) ~multiple:4 ()
  in
  Alcotest.(check int) "page size" 2048 (Resident.page_size res);
  Alcotest.(check int) "pages" 16 (Resident.total_pages res);
  let p = Option.get (Resident.alloc res) in
  Alcotest.(check int) "aligned frame group" 0 (p.Types.pfn mod 4)

let test_resident_respects_holes () =
  let machine =
    Machine.create ~arch:Arch.sun3_160 ~memory_frames:32
      ~holes:[ (10, 19) ] ()
  in
  let res = Resident.create ~phys:(Machine.phys machine) ~multiple:1 () in
  Alcotest.(check int) "holes excluded" 22 (Resident.total_pages res)

(* ---- objects and the cache ---------------------------------------------- *)

let test_object_refcounting () =
  let _, _, sys = setup () in
  let o = Vm_object.create_anonymous sys ~size:ps in
  Alcotest.(check int) "initial" 1 o.Types.obj_ref;
  Vm_object.reference o;
  Alcotest.(check int) "incremented" 2 o.Types.obj_ref;
  Vm_object.deallocate sys o;
  Alcotest.(check bool) "still alive" false o.Types.obj_dead;
  Vm_object.deallocate sys o;
  Alcotest.(check bool) "terminated" true o.Types.obj_dead

let test_object_termination_frees_pages () =
  let _, _, sys = setup () in
  let res = sys.Vm_sys.resident in
  let free0 = Resident.free_count res in
  let o = Vm_object.create_anonymous sys ~size:(4 * ps) in
  let p = Option.get (Resident.alloc res) in
  Resident.insert res p ~obj:o ~offset:0;
  Alcotest.(check int) "page held" (free0 - 1) (Resident.free_count res);
  Vm_object.deallocate sys o;
  Alcotest.(check int) "page freed" free0 (Resident.free_count res)

let test_object_cache_revive () =
  let _, _, sys = setup () in
  let pager, _, requests = counting_pager sys ~name:"cached" in
  let o1 = Vm_object.create_with_pager sys pager ~size:(2 * ps) in
  (* Give it a resident page so revival is observable. *)
  let p = Vm_sys.grab_page sys in
  Resident.insert sys.Vm_sys.resident p ~obj:o1 ~offset:0;
  Vm_object.deallocate sys o1;
  Alcotest.(check bool) "cached, not dead" false o1.Types.obj_dead;
  Alcotest.(check int) "in cache" 1 (Vm_object.cached_count sys);
  let o2 = Vm_object.create_with_pager sys pager ~size:(2 * ps) in
  Alcotest.(check bool) "same object revived" true (o1 == o2);
  Alcotest.(check int) "cache hit counted" 1 sys.Vm_sys.stats.Vm_sys.cache_hits;
  Alcotest.(check bool) "page kept" true
    (Vm_object.lookup_resident sys o2 ~offset:0 <> None);
  Alcotest.(check int) "no pager traffic" 0 !requests;
  Vm_object.deallocate sys o2

let test_object_cache_disabled () =
  let _, _, sys = setup () in
  sys.Vm_sys.cache_enabled <- false;
  let pager, _, _ = counting_pager sys ~name:"uncached" in
  let o = Vm_object.create_with_pager sys pager ~size:ps in
  Vm_object.deallocate sys o;
  Alcotest.(check bool) "terminated immediately" true o.Types.obj_dead;
  Alcotest.(check int) "cache empty" 0 (Vm_object.cached_count sys)

let test_object_cache_lru_eviction () =
  let _, _, sys = setup () in
  sys.Vm_sys.object_cache_limit <- 2;
  let mk i =
    let pager, _, _ =
      counting_pager sys ~name:(Printf.sprintf "file%d" i)
    in
    Vm_object.create_with_pager sys pager ~size:ps
  in
  let o1 = mk 1 and o2 = mk 2 and o3 = mk 3 in
  Vm_object.deallocate sys o1;
  Vm_object.deallocate sys o2;
  Vm_object.deallocate sys o3;
  Alcotest.(check int) "bounded" 2 (Vm_object.cached_count sys);
  Alcotest.(check bool) "oldest evicted" true o1.Types.obj_dead;
  Alcotest.(check bool) "newest kept" false o3.Types.obj_dead

let test_live_object_shared_not_cached () =
  let _, _, sys = setup () in
  let pager, _, _ = counting_pager sys ~name:"live" in
  let o1 = Vm_object.create_with_pager sys pager ~size:ps in
  let o2 = Vm_object.create_with_pager sys pager ~size:ps in
  Alcotest.(check bool) "same live object" true (o1 == o2);
  Alcotest.(check int) "two references" 2 o1.Types.obj_ref;
  Vm_object.deallocate sys o1;
  Vm_object.deallocate sys o2

let test_drain_cache () =
  let _, _, sys = setup () in
  let pager, _, _ = counting_pager sys ~name:"drained" in
  let o = Vm_object.create_with_pager sys pager ~size:ps in
  Vm_object.deallocate sys o;
  Alcotest.(check int) "cached" 1 (Vm_object.cached_count sys);
  Vm_object.drain_cache sys;
  Alcotest.(check int) "empty" 0 (Vm_object.cached_count sys);
  Alcotest.(check bool) "terminated" true o.Types.obj_dead

(* ---- shadows and chains -------------------------------------------------- *)

let test_shadow_geometry () =
  let _, _, sys = setup () in
  let bottom = Vm_object.create_anonymous sys ~size:(8 * ps) in
  let s = Vm_object.shadow sys bottom ~offset:(2 * ps) ~size:(4 * ps) in
  Alcotest.(check int) "chain" 2 (Vm_object.chain_length s);
  (* A page resident at bottom offset 3*ps is found at shadow offset ps. *)
  let p = Vm_sys.grab_page sys in
  Resident.insert sys.Vm_sys.resident p ~obj:bottom ~offset:(3 * ps);
  (match Vm_object.chain_lookup sys s ~offset:ps with
   | `Found (owner, q, off) ->
     Alcotest.(check bool) "in bottom" true (owner == bottom);
     Alcotest.(check bool) "same page" true (q == p);
     Alcotest.(check int) "offset translated" (3 * ps) off
   | `Absent _ -> Alcotest.fail "expected found");
  (* Outside the resident page the chain bottoms out. *)
  (match Vm_object.chain_lookup sys s ~offset:0 with
   | `Absent (b, off) ->
     Alcotest.(check bool) "bottom object" true (b == bottom);
     Alcotest.(check int) "offset" (2 * ps) off
   | `Found _ -> Alcotest.fail "expected absent")

let test_shadow_page_obscures () =
  let _, _, sys = setup () in
  let bottom = Vm_object.create_anonymous sys ~size:(2 * ps) in
  let s = Vm_object.shadow sys bottom ~offset:0 ~size:(2 * ps) in
  let pb = Vm_sys.grab_page sys in
  Resident.insert sys.Vm_sys.resident pb ~obj:bottom ~offset:0;
  let pt = Vm_sys.grab_page sys in
  Resident.insert sys.Vm_sys.resident pt ~obj:s ~offset:0;
  (match Vm_object.chain_lookup sys s ~offset:0 with
   | `Found (owner, q, _) ->
     Alcotest.(check bool) "shadow wins" true (owner == s && q == pt)
   | `Absent _ -> Alcotest.fail "expected found")

let test_collapse_merges_single_ref () =
  let _, _, sys = setup () in
  let bottom = Vm_object.create_anonymous sys ~size:(2 * ps) in
  let s = Vm_object.shadow sys bottom ~offset:0 ~size:(2 * ps) in
  (* bottom page at offset ps is visible through s; bottom page at 0 is
     obscured by s's own page. *)
  let hidden = Vm_sys.grab_page sys in
  Resident.insert sys.Vm_sys.resident hidden ~obj:bottom ~offset:0;
  let visible = Vm_sys.grab_page sys in
  Resident.insert sys.Vm_sys.resident visible ~obj:bottom ~offset:ps;
  let own = Vm_sys.grab_page sys in
  Resident.insert sys.Vm_sys.resident own ~obj:s ~offset:0;
  let free0 = Resident.free_count sys.Vm_sys.resident in
  Vm_object.collapse sys s;
  Alcotest.(check int) "chain collapsed" 1 (Vm_object.chain_length s);
  Alcotest.(check bool) "bottom dead" true bottom.Types.obj_dead;
  (* The visible page moved up; the hidden one was freed. *)
  let same_page expected found =
    match found with Some q -> q == expected | None -> false
  in
  Alcotest.(check bool) "visible moved" true
    (same_page visible (Vm_object.lookup_resident sys s ~offset:ps));
  Alcotest.(check bool) "own page kept" true
    (same_page own (Vm_object.lookup_resident sys s ~offset:0));
  Alcotest.(check int) "hidden freed" (free0 + 1)
    (Resident.free_count sys.Vm_sys.resident);
  Alcotest.(check int) "collapse counted" 1 sys.Vm_sys.stats.Vm_sys.collapses

let test_collapse_blocked_by_sharing () =
  let _, _, sys = setup () in
  let bottom = Vm_object.create_anonymous sys ~size:ps in
  Vm_object.reference bottom; (* someone else holds it *)
  let s = Vm_object.shadow sys bottom ~offset:0 ~size:ps in
  Vm_object.collapse sys s;
  Alcotest.(check int) "not collapsed" 2 (Vm_object.chain_length s);
  Alcotest.(check bool) "bottom alive" false bottom.Types.obj_dead

let test_collapse_blocked_by_pager () =
  let _, _, sys = setup () in
  let pager, _, _ = counting_pager sys ~name:"perm" in
  let bottom = Vm_object.create_with_pager sys pager ~size:ps in
  let s = Vm_object.shadow sys bottom ~offset:0 ~size:ps in
  Vm_object.collapse sys s;
  Alcotest.(check int) "pager-backed never merges" 2
    (Vm_object.chain_length s)

let test_collapse_walks_past_blocked_level () =
  let _, _, sys = setup () in
  (* top -> mid (shared) -> deep -> bottom; deep and bottom have single
     references, so they merge even though mid is blocked. *)
  let bottom = Vm_object.create_anonymous sys ~size:ps in
  let deep = Vm_object.shadow sys bottom ~offset:0 ~size:ps in
  let mid = Vm_object.shadow sys deep ~offset:0 ~size:ps in
  Vm_object.reference mid;
  let top = Vm_object.shadow sys mid ~offset:0 ~size:ps in
  Alcotest.(check int) "chain of four" 4 (Vm_object.chain_length top);
  Vm_object.collapse sys top;
  Alcotest.(check int) "tail merged below the shared level" 2
    (Vm_object.chain_length top)

let test_collapse_disabled () =
  let _, _, sys = setup () in
  sys.Vm_sys.collapse_enabled <- false;
  let bottom = Vm_object.create_anonymous sys ~size:ps in
  let s = Vm_object.shadow sys bottom ~offset:0 ~size:ps in
  Vm_object.collapse sys s;
  Alcotest.(check int) "ablation: untouched" 2 (Vm_object.chain_length s)

let test_terminate_releases_chain () =
  let _, _, sys = setup () in
  let bottom = Vm_object.create_anonymous sys ~size:ps in
  let s = Vm_object.shadow sys bottom ~offset:0 ~size:ps in
  Vm_object.deallocate sys s;
  Alcotest.(check bool) "shadow dead" true s.Types.obj_dead;
  Alcotest.(check bool) "bottom dead too" true bottom.Types.obj_dead

let () =
  Alcotest.run "vm_object"
    [ ( "resident",
        [ Alcotest.test_case "alloc/free" `Quick test_resident_alloc_free;
          Alcotest.test_case "hash lookup" `Quick test_resident_hash_lookup;
          Alcotest.test_case "queues" `Quick test_resident_queues;
          Alcotest.test_case "page multiple" `Quick
            test_resident_page_multiple;
          Alcotest.test_case "respects holes" `Quick
            test_resident_respects_holes ] );
      ( "objects",
        [ Alcotest.test_case "refcounting" `Quick test_object_refcounting;
          Alcotest.test_case "termination frees pages" `Quick
            test_object_termination_frees_pages;
          Alcotest.test_case "live object shared" `Quick
            test_live_object_shared_not_cached ] );
      ( "cache",
        [ Alcotest.test_case "revive" `Quick test_object_cache_revive;
          Alcotest.test_case "disabled" `Quick test_object_cache_disabled;
          Alcotest.test_case "LRU eviction" `Quick
            test_object_cache_lru_eviction;
          Alcotest.test_case "drain" `Quick test_drain_cache ] );
      ( "shadows",
        [ Alcotest.test_case "geometry" `Quick test_shadow_geometry;
          Alcotest.test_case "page obscures" `Quick
            test_shadow_page_obscures;
          Alcotest.test_case "collapse merges" `Quick
            test_collapse_merges_single_ref;
          Alcotest.test_case "blocked by sharing" `Quick
            test_collapse_blocked_by_sharing;
          Alcotest.test_case "blocked by pager" `Quick
            test_collapse_blocked_by_pager;
          Alcotest.test_case "walks past blocked level" `Quick
            test_collapse_walks_past_blocked_level;
          Alcotest.test_case "ablation switch" `Quick test_collapse_disabled;
          Alcotest.test_case "terminate releases chain" `Quick
            test_terminate_releases_chain ] ) ]
