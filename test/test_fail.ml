(* Fault-injection tests: determinism of seeded plans (lib/fail), kernel
   invariants under arbitrary injected pager/disk faults, and graceful
   degradation — bounded retry with KERN_MEMORY_ERROR, pager death, and
   dirty-page rescue through the default pager. *)

open Mach_hw
open Mach_core
open Mach_pmap
open Mach_pagers
module Fail = Mach_fail.Fail

(* ---- seeded plans ------------------------------------------------------ *)

(* A two-site workload with probabilistic rules at both sites — the shape
   machsim --chaos exercises. *)
let exercise seed =
  let inj = Fail.create ~seed in
  Fail.attach inj ~site:"disk.read"
    [ Fail.With_probability (0.2, Fail.Fail);
      Fail.With_probability (0.15, Fail.Delay 750) ];
  Fail.attach inj ~site:"pager.request"
    [ Fail.After (5, Fail.With_probability (0.3, Fail.Drop));
      Fail.With_probability (0.1, Fail.Garbage) ];
  let decisions =
    List.init 300 (fun i ->
        let site = if i mod 3 = 0 then "pager.request" else "disk.read" in
        Fail.decide inj ~site)
  in
  (decisions, Fail.trace inj, Fail.fingerprint inj)

let test_same_seed_replays () =
  let d1, t1, f1 = exercise 0xfeed in
  let d2, t2, f2 = exercise 0xfeed in
  Alcotest.(check bool) "decision sequences identical" true (d1 = d2);
  Alcotest.(check bool) "traces identical" true (t1 = t2);
  Alcotest.(check string) "fingerprints identical" f1 f2;
  Alcotest.(check bool) "plan actually fired" true (t1 <> [])

let test_seed_changes_sequence () =
  let _, _, f1 = exercise 1 in
  let _, _, f2 = exercise 2 in
  Alcotest.(check bool) "different seeds, different fingerprints" true
    (f1 <> f2)

let test_sites_are_independent () =
  (* Interleaving decisions at another site must not perturb this one. *)
  let plan = [ Fail.With_probability (0.3, Fail.Fail) ] in
  let solo =
    let inj = Fail.create ~seed:99 in
    Fail.attach inj ~site:"disk.read" plan;
    List.init 100 (fun _ -> Fail.decide inj ~site:"disk.read")
  in
  let interleaved =
    let inj = Fail.create ~seed:99 in
    Fail.attach inj ~site:"disk.read" plan;
    Fail.attach inj ~site:"net.rpc" [ Fail.With_probability (0.5, Fail.Drop) ];
    List.init 100 (fun _ ->
        ignore (Fail.decide inj ~site:"net.rpc");
        Fail.decide inj ~site:"disk.read")
  in
  Alcotest.(check bool) "disk.read stream unchanged" true (solo = interleaved)

let test_windowed_rules () =
  let inj = Fail.create ~seed:7 in
  Fail.attach inj ~site:"a" [ Fail.Fail_n_then_recover (3, Fail.Fail) ];
  Fail.attach inj ~site:"b" [ Fail.After (2, Fail.Always Fail.Drop) ];
  Fail.attach inj ~site:"c" [ Fail.Between (1, 2, Fail.Always Fail.Fail) ];
  let take site n = List.init n (fun _ -> Fail.decide inj ~site) in
  Alcotest.(check bool) "fail 3 then recover" true
    (take "a" 5 = [ Fail.Fail; Fail.Fail; Fail.Fail; Fail.Pass; Fail.Pass ]);
  Alcotest.(check bool) "after 2" true
    (take "b" 4 = [ Fail.Pass; Fail.Pass; Fail.Drop; Fail.Drop ]);
  Alcotest.(check bool) "between 1 and 2 inclusive" true
    (take "c" 4 = [ Fail.Pass; Fail.Fail; Fail.Fail; Fail.Pass ])

let test_scramble () =
  let b = Bytes.of_string "paging hierarchy" in
  let s = Fail.scramble b in
  Alcotest.(check bool) "never the identity" true (Bytes.compare b s <> 0);
  Alcotest.(check string) "original untouched" "paging hierarchy"
    (Bytes.to_string b);
  Alcotest.(check bool) "involution" true (Fail.scramble s = b)

let test_profiles_and_spec () =
  List.iter
    (fun n ->
       match Fail.profile n with
       | Some (_ :: _) -> ()
       | Some [] | None -> Alcotest.fail ("empty or missing profile " ^ n))
    Fail.profile_names;
  (match Fail.parse_spec "42" with
   | Ok (42, "flaky") -> ()
   | _ -> Alcotest.fail "bare seed should default to flaky");
  (match Fail.parse_spec "7:pagerdeath" with
   | Ok (7, "pagerdeath") -> ()
   | _ -> Alcotest.fail "SEED:PROFILE should parse");
  (match Fail.parse_spec "nope" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad seed must be rejected");
  match Fail.parse_spec "1:zzz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown profile must be rejected"

(* ---- kernel helpers ----------------------------------------------------- *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Kr.to_string e)

let boot ?(frames = 1024) () =
  (* uVAX II, 512 B hardware pages, multiple 8 => 4 KB system pages. *)
  let machine = Machine.create ~arch:Arch.uvax2 ~memory_frames:frames () in
  let kernel = Kernel.create ~page_multiple:8 machine in
  (machine, kernel, Kernel.sys kernel)

let new_task kernel =
  let t = Kernel.create_task kernel () in
  Kernel.run_task kernel ~cpu:0 t;
  t

(* An external pager over a plain hash store: reliable by itself, so every
   misbehaviour in these tests comes from the injector wrapped around it. *)
let store_pager () =
  let store : (int, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  {
    Types.pgr_id = Types.fresh_pager_id ();
    pgr_name = "store";
    pgr_request =
      (fun ~offset ~length ->
         match Hashtbl.find_opt store offset with
         | Some d ->
           Types.Data_provided (Bytes.sub d 0 (min length (Bytes.length d)))
         | None -> Types.Data_unavailable);
    pgr_write =
      (fun ~offset ~data ->
         (* Per-offset store: split clustered writes at page size so
            every page stays reachable to single-page reads. *)
         let ps = 4 * 1024 in
         let len = Bytes.length data in
         let rec chunk pos =
           if pos < len then begin
             Hashtbl.replace store (offset + pos)
               (Bytes.sub data pos (min ps (len - pos)));
             chunk (pos + ps)
           end
         in
         chunk 0;
         Types.Write_completed);
    pgr_submit = Types.no_submit;
    pgr_submit_write = Types.no_submit_write;
    pgr_should_cache = ref false;
  }

(* ---- qcheck: invariants survive arbitrary injected faults --------------- *)

let pages = 16

type op =
  | Write_page of bool * int (* in the file region?, page index *)
  | Read_page of bool * int
  | Deactivate of int
  | Pageout of int

let op_gen =
  QCheck2.Gen.(
    oneof
      [ map2 (fun f i -> Write_page (f, i)) bool (int_range 0 (pages - 1));
        map2 (fun f i -> Read_page (f, i)) bool (int_range 0 (pages - 1));
        map (fun n -> Deactivate n) (int_range 1 24);
        map (fun n -> Pageout n) (int_range 1 24) ])

(* Whatever the injectors do to the pager stack and the disk, the
   authoritative machine-independent state must stay consistent: the
   kernel's invariant checker stays clean, every cached TLB entry agrees
   with the pmap, and no stale TLB entry is ever used.  Faults the task
   cannot survive surface as Memory_violation, never as corruption. *)
let chaos_invariants (seed, ops) =
  let machine, kernel, sys = boot () in
  let ps = Kernel.page_size kernel in
  let inj = Fail.create ~seed in
  Fail.attach inj ~site:"pager.request"
    [ Fail.With_probability (0.15, Fail.Fail);
      Fail.With_probability (0.1, Fail.Drop);
      Fail.With_probability (0.05, Fail.Short 9);
      Fail.With_probability (0.05, Fail.Garbage);
      Fail.With_probability (0.05, Fail.Delay 2_000) ];
  Fail.attach inj ~site:"pager.write"
    [ Fail.With_probability (0.4, Fail.Fail) ];
  Fail.attach inj ~site:"disk.read"
    [ Fail.With_probability (0.15, Fail.Fail);
      Fail.With_probability (0.1, Fail.Delay 1_000) ];
  Fail.attach inj ~site:"disk.write"
    [ Fail.With_probability (0.15, Fail.Fail) ];
  (* Kernel-created default pagers get wrapped too. *)
  sys.Vm_sys.pager_decorator <- Some (Chaos_pager.wrap sys inj);
  let fs = Simfs.create machine () in
  Simdisk.set_injector (Simfs.disk fs) (Some inj);
  Simfs.install_file fs ~name:"/data" ~data:(Bytes.make (pages * ps) 'f');
  let t = new_task kernel in
  let pager = store_pager () in
  let a_pager =
    fst (ok (Chaos_pager.map_wrapped sys t inj ~pager ~size:(pages * ps) ()))
  in
  let a_file = fst (ok (Vnode_pager.map_file sys fs t ~name:"/data" ())) in
  let apply op =
    try
      match op with
      | Write_page (file, i) ->
        let base = if file then a_file else a_pager in
        Machine.write_byte machine ~cpu:0 ~va:(base + (i * ps)) 'w'
      | Read_page (file, i) ->
        let base = if file then a_file else a_pager in
        ignore (Machine.read_byte machine ~cpu:0 ~va:(base + (i * ps)))
      | Deactivate n -> Vm_pageout.deactivate_some sys ~count:n
      | Pageout n -> Vm_pageout.run sys ~wanted:n
    with
    | Machine.Memory_violation _ -> ()
    | Vm_sys.Out_of_memory -> ()
  in
  List.iter apply ops;
  let errs = Vm_debug.check_all sys ~maps:[ Task.map t ] in
  let pmap = Task.pmap t in
  let hw = Arch.uvax2.Arch.hw_page_size in
  let agreed = ref true in
  List.iter
    (fun (e : Tlb.entry) ->
       if e.Tlb.asid = pmap.Pmap.asid then
         match pmap.Pmap.extract (e.Tlb.vpn * hw) with
         | Some pfn when pfn = e.Tlb.pfn -> ()
         | _ -> agreed := false)
    (Machine.tlb_contents machine ~cpu:0);
  errs = [] && !agreed
  && (Machine.stats machine).Machine.stale_tlb_uses = 0

let chaos_qcheck =
  QCheck2.Test.make
    ~name:"page tables and TLBs agree with resident state under chaos"
    ~count:40
    QCheck2.Gen.(
      pair (int_range 0 1_000_000) (list_size (int_range 20 80) op_gen))
    chaos_invariants

(* ---- qcheck: memory pressure under lowmem chaos -------------------------- *)

(* Scarce memory, a finite swap pool, and the [lowmem] chaos profile:
   whatever the op mix, the kernel itself never fails — nothing escapes
   beyond the architectural Memory_violation — the injector fingerprint
   and the set of OOM victims replay exactly under the same seed, and
   every surviving task's memory is byte-for-byte what the same op
   sequence produces on an unpressured machine.  The fidelity claim is
   sound because pressure never loses data silently: a no-space or
   failed pageout keeps the page dirty, and a live pager's read failure
   surfaces as an error rather than zero fill. *)

let pr_tasks = 3
let pr_pages = 24

type pr_op =
  | P_write of int * int * char (* task, page, byte *)
  | P_read of int * int
  | P_deactivate of int
  | P_pageout of int

(* Write-heavy: dirty pages are what fills the swap pool and forces the
   OOM policy, so the mix must actually reach 4x overcommit in dirt. *)
let pr_op_gen =
  QCheck2.Gen.(
    frequency
      [ ( 4,
          map3
            (fun t i c -> P_write (t, i, Char.chr (Char.code 'a' + c)))
            (int_range 0 (pr_tasks - 1))
            (int_range 0 (pr_pages - 1))
            (int_range 0 25) );
        ( 2,
          map2
            (fun t i -> P_read (t, i))
            (int_range 0 (pr_tasks - 1))
            (int_range 0 (pr_pages - 1)) );
        (1, map (fun n -> P_deactivate n) (int_range 1 24));
        (1, map (fun n -> P_pageout n) (int_range 1 24)) ])

type pr_outcome = {
  pro_fingerprint : string;
  pro_killed : bool list;
  pro_contents : string option list; (* [None] = OOM victim *)
  pro_clean : bool; (* invariant checker over the surviving maps *)
}

let lowmem_run ~pressured (seed, ops) =
  let machine, kernel, sys =
    boot ~frames:(if pressured then 256 else 4096) ()
  in
  let ps = Kernel.page_size kernel in
  let inj =
    if not pressured then None
    else begin
      Vm_sys.set_swap_capacity sys (Some (8 * ps));
      let inj = Fail.create ~seed in
      (match Fail.profile "lowmem" with
       | Some sites ->
         List.iter (fun (site, plan) -> Fail.attach inj ~site plan) sites
       | None -> Alcotest.fail "lowmem profile missing");
      sys.Vm_sys.pager_decorator <- Some (Chaos_pager.wrap sys inj);
      Some inj
    end
  in
  let tasks = Array.init pr_tasks (fun _ -> Kernel.create_task kernel ()) in
  let addrs =
    Array.map
      (fun t ->
         Kernel.run_task kernel ~cpu:0 t;
         ok (Vm_user.allocate sys t ~size:(pr_pages * ps) ~anywhere:true ()))
      tasks
  in
  let alive i = not tasks.(i).Task.task_oom_killed in
  let apply op =
    try
      match op with
      | P_write (ti, i, c) ->
        if alive ti then begin
          Kernel.run_task kernel ~cpu:0 tasks.(ti);
          Machine.write_byte machine ~cpu:0 ~va:(addrs.(ti) + (i * ps)) c
        end
      | P_read (ti, i) ->
        if alive ti then begin
          Kernel.run_task kernel ~cpu:0 tasks.(ti);
          ignore (Machine.read_byte machine ~cpu:0 ~va:(addrs.(ti) + (i * ps)))
        end
      | P_deactivate n -> Vm_pageout.deactivate_some sys ~count:n
      | P_pageout n -> Vm_pageout.run sys ~wanted:n
    with
    | Machine.Memory_violation _ -> ()
    | Vm_sys.Out_of_memory -> ()
  in
  List.iter apply ops;
  (* Read every survivor back.  A transient injected read fault can
     surface as Memory_violation; retrying draws fresh decisions from
     the plan, so data is only ever unavailable, never lost. *)
  let contents ti =
    if not (alive ti) then None
    else begin
      Kernel.run_task kernel ~cpu:0 tasks.(ti);
      let buf = Bytes.create pr_pages in
      for i = 0 to pr_pages - 1 do
        let rec rd attempt =
          try Machine.read_byte machine ~cpu:0 ~va:(addrs.(ti) + (i * ps))
          with Machine.Memory_violation _ when attempt < 4 -> rd (attempt + 1)
        in
        Bytes.set buf i (rd 0)
      done;
      Some (Bytes.to_string buf)
    end
  in
  let cont = List.init pr_tasks contents in
  let maps =
    Array.to_list tasks
    |> List.filteri (fun i _ -> alive i)
    |> List.map Task.map
  in
  {
    pro_fingerprint =
      (match inj with Some i -> Fail.fingerprint i | None -> "");
    pro_killed = List.init pr_tasks (fun i -> not (alive i));
    pro_contents = cont;
    pro_clean = Vm_debug.check_all sys ~maps = [];
  }

let lowmem_resilience (seed, ops) =
  let p1 = lowmem_run ~pressured:true (seed, ops) in
  let p2 = lowmem_run ~pressured:true (seed, ops) in
  let calm = lowmem_run ~pressured:false (seed, ops) in
  let survivors_match =
    List.for_all2
      (fun p c ->
         match (p, c) with
         | None, _ -> true (* OOM victim: nothing left to compare *)
         | Some got, Some want -> got = want
         | Some _, None -> false)
      p1.pro_contents calm.pro_contents
  in
  p1 = p2 (* fingerprint, victims, and bytes replay under the seed *)
  && p1.pro_clean && calm.pro_clean
  && (not (List.exists Fun.id calm.pro_killed))
  && survivors_match

let lowmem_qcheck =
  QCheck2.Test.make
    ~name:"lowmem chaos: kernel survives, replays, and keeps survivor bytes"
    ~count:15
    QCheck2.Gen.(
      pair (int_range 0 1_000_000) (list_size (int_range 60 150) pr_op_gen))
    lowmem_resilience

(* ---- wasted transfers are charged at run length -------------------------- *)

(* A transient failure on a clustered run wastes the *whole* transfer —
   the platter spun every block of the run past the head before the
   error surfaced — so the retry premium must scale with the run, not
   cost a flat one block.  Regression: the premium for an 8-block run
   equals one full 8-block service, and for a single block one 1-block
   service. *)
let test_disk_retry_charges_full_run () =
  let premium count =
    let cost inject =
      let machine =
        Machine.create ~arch:Arch.uvax2 ~memory_frames:64 ()
      in
      let disk = Simdisk.create machine ~block_size:4096 in
      for b = 0 to count - 1 do
        Simdisk.install disk ~block:b (Bytes.make 4096 'd')
      done;
      if inject then begin
        let inj = Fail.create ~seed:13 in
        (* First transfer fails, the retry goes through. *)
        Fail.attach inj ~site:"disk.read"
          [ Fail.Between (0, 0, Fail.Always Fail.Fail) ];
        Simdisk.set_injector disk (Some inj)
      end;
      ignore (Simdisk.read_run disk ~cpu:0 ~first:0 ~count);
      (Machine.cycles machine ~cpu:0,
       Machine.disk_service_cycles machine ~bytes:(count * 4096))
    in
    let clean, _ = cost false in
    let failed, service = cost true in
    (failed - clean, service)
  in
  let p1, s1 = premium 1 in
  let p8, s8 = premium 8 in
  Alcotest.(check int) "single-block retry wastes one block" s1 p1;
  Alcotest.(check int) "8-block retry wastes the whole run" s8 p8;
  Alcotest.(check bool) "run premium really scales with length" true (p8 > p1)

(* ---- graceful degradation ----------------------------------------------- *)

let test_bounded_retries_then_error () =
  let _machine, kernel, sys = boot () in
  let ps = Kernel.page_size kernel in
  let t = new_task kernel in
  let inj = Fail.create ~seed:5 in
  Fail.attach inj ~site:"pager.request" [ Fail.Always Fail.Fail ];
  let pager = store_pager () in
  let addr =
    fst (ok (Chaos_pager.map_wrapped sys t inj ~pager ~size:(4 * ps) ()))
  in
  (* Make degradation visible: errors, not zero fill. *)
  (match Vm_map.resolve_object_at sys (Task.map t) ~va:addr with
   | Some (o, _) -> o.Types.obj_degrade <- Types.Degrade_error
   | None -> Alcotest.fail "no object behind the mapping");
  let read () = Vm_user.read sys t ~addr ~size:8 in
  let stats = sys.Vm_sys.stats in
  (match read () with
   | Error Kr.Memory_error -> ()
   | Ok _ | Error _ -> Alcotest.fail "expected KERN_MEMORY_ERROR");
  Alcotest.(check int) "exactly the retry budget was spent"
    sys.Vm_sys.pager_retry_limit stats.Vm_sys.pager_retries;
  (* Two more exhausted budgets reach the death threshold. *)
  ignore (read ());
  ignore (read ());
  Alcotest.(check int) "pager declared dead" 1 stats.Vm_sys.pager_deaths;
  let retries_at_death = stats.Vm_sys.pager_retries in
  (* A dead pager is no longer consulted: the degrade policy answers
     immediately and the retry counter stops moving. *)
  (match read () with
   | Error Kr.Memory_error -> ()
   | Ok _ | Error _ -> Alcotest.fail "Degrade_error must keep failing");
  Alcotest.(check int) "no retries after death" retries_at_death
    stats.Vm_sys.pager_retries;
  Alcotest.(check bool) "every failed fault was counted" true
    (stats.Vm_sys.memory_errors >= 4)

let test_pager_death_rescues_dirty_pages () =
  (* 256 frames => 16 system pages of memory; a 12-page dirty region. *)
  let machine, kernel, sys = boot ~frames:256 () in
  let ps = Kernel.page_size kernel in
  let n = 12 in
  let t = new_task kernel in
  let inj = Fail.create ~seed:11 in
  (* Reads pass; every write to the external pager fails, so pageout burns
     its retry budget until the pager dies mid-workload. *)
  Fail.attach inj ~site:"pager.write" [ Fail.Always Fail.Fail ];
  let pager = store_pager () in
  let addr =
    fst (ok (Chaos_pager.map_wrapped sys t inj ~pager ~size:(n * ps) ()))
  in
  for i = 0 to n - 1 do
    Machine.write machine ~cpu:0 ~va:(addr + (i * ps))
      (Bytes.of_string (Printf.sprintf "page-%02d" i))
  done;
  let stats = sys.Vm_sys.stats in
  let rounds = ref 0 in
  while stats.Vm_sys.pager_deaths = 0 && !rounds < 16 do
    incr rounds;
    Vm_pageout.deactivate_some sys ~count:64;
    Vm_pageout.run sys ~wanted:64
  done;
  Alcotest.(check int) "pager died" 1 stats.Vm_sys.pager_deaths;
  Alcotest.(check bool) "failed pageouts kept pages dirty" true
    (stats.Vm_sys.pageout_failures > 0);
  Alcotest.(check bool) "dirty pages were rescued" true
    (stats.Vm_sys.rescued_pages > 0);
  (match Vm_map.resolve_object_at sys (Task.map t) ~va:addr with
   | Some (o, _) ->
     (match o.Types.obj_rescue with
      | Some r ->
        Alcotest.(check bool) "rescue (default) pager holds the data" true
          (Swap_pager.stored_bytes r > 0)
      | None -> Alcotest.fail "expected a rescue pager")
   | None -> Alcotest.fail "no object behind the mapping");
  (* Evict everything through the now-dead pager — writes land on the
     rescue pager — then fault it all back in. *)
  for _ = 1 to 2 do
    Vm_pageout.deactivate_some sys ~count:64;
    Vm_pageout.run sys ~wanted:64
  done;
  for i = 0 to n - 1 do
    Alcotest.(check string)
      (Printf.sprintf "page %d intact" i)
      (Printf.sprintf "page-%02d" i)
      (Bytes.to_string
         (Machine.read machine ~cpu:0 ~va:(addr + (i * ps)) ~len:7))
  done;
  Alcotest.(check int) "task never saw a memory error" 0
    stats.Vm_sys.memory_errors

let () =
  Alcotest.run "fail"
    [ ( "plans",
        [ Alcotest.test_case "same seed replays identically" `Quick
            test_same_seed_replays;
          Alcotest.test_case "seed changes the sequence" `Quick
            test_seed_changes_sequence;
          Alcotest.test_case "site streams are independent" `Quick
            test_sites_are_independent;
          Alcotest.test_case "windowed rules" `Quick test_windowed_rules;
          Alcotest.test_case "scramble is a non-identity involution" `Quick
            test_scramble;
          Alcotest.test_case "profiles and --chaos spec parsing" `Quick
            test_profiles_and_spec ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest chaos_qcheck;
          QCheck_alcotest.to_alcotest lowmem_qcheck ] );
      ( "disk",
        [ Alcotest.test_case "wasted retry charged at run length" `Quick
            test_disk_retry_charges_full_run ] );
      ( "degradation",
        [ Alcotest.test_case "bounded retries then KERN_MEMORY_ERROR" `Quick
            test_bounded_retries_then_error;
          Alcotest.test_case "pager death rescues dirty pages" `Quick
            test_pager_death_rescues_dirty_pages ] ) ]
